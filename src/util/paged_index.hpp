/**
 * @file
 * Out-of-core dedup index: a two-tier set of 64-bit keys whose cold
 * majority lives in fixed-capacity on-disk pages (ROADMAP item 4,
 * DESIGN.md §15).
 *
 * Deep enumerations are RAM-bound on the seen-key sets: PR 5 spills
 * the *frontier* out of core, but every dedup digest still lives in
 * `FlatU64Set`/`ShardedU64Set` for the whole run.  The PagedIndex
 * keeps the same exact insert-if-absent contract the engines rely on
 * while bounding the in-RAM ("hot") tier:
 *
 *  - Hot tier: a sharded array of FlatU64Set (one small mutex per
 *    shard, same striping as ShardedU64Set), where every key starts
 *    its life.
 *  - Cold tier: sorted fixed-capacity pages in the spill directory,
 *    written with the §11 snapshot container + atomic-file discipline
 *    (CRC-framed records, fingerprint header, tmp+rename).  Each page
 *    keeps an in-RAM summary — min/max key plus a bloom filter — so a
 *    cold probe usually touches zero pages; a small direct-mapped
 *    cache of decoded pages serves the probes that do touch disk,
 *    and pages are read and decoded outside the cache lock so
 *    concurrent workers' cold probes do not serialize.
 *
 * Exactness is the load-bearing property: contains()/insert() answer
 * identically whether a key is hot, cold or absent, so a capped run's
 * exploration — outcomes, duplicate counts, every deterministic
 * counter — is byte-identical to the uncapped run's, and eviction
 * policy is pure performance tuning.  Eviction (evict()) is only ever
 * invoked from engine quiescent points (the serial loop, the parallel
 * wave barrier); concurrent workers use contains() only, which is
 * thread-safe against other readers.
 *
 * Durability mirrors the SpillQueue: page files referenced by a final
 * checkpoint are retained for the resume to adopt (adoptPages()
 * rebuilds the summaries by re-reading the files, refusing damaged or
 * mismatched ones with a structured snapshot::Status); otherwise the
 * destructor removes them, so a graceful run never orphans files.
 * Pages referenced by an on-disk snapshot — adopted ones, and pages
 * present at the last markDurable() checkpoint — are never deleted on
 * a failure path: a failed adoption or a truncated run whose final
 * checkpoint write fails (retainDurable()) leaves the previous resume
 * point's cold tier intact.
 * Page I/O failures — including the injected `index-io-fail` site —
 * are sticky and surfaced through ioFailed(), never UB: the engine
 * degrades the run to a contained WorkerFault truncation.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/io_env.hpp"
#include "util/snapshot.hpp"
#include "util/stats.hpp"
#include "util/u64set.hpp"

namespace satom
{

/** Two-tier (RAM + disk-paged) insert-only set of uint64_t keys. */
class PagedIndex
{
  public:
    /**
     * @p dir is where cold pages live (the run's spill directory);
     * empty disables paging — the index is then a plain sharded
     * in-RAM set and evict() is a no-op.  @p fingerprint stamps every
     * page file (the §11 `#cfg` discipline), so adoptPages() refuses
     * pages from a different program/model/option set.  @p io routes
     * page I/O through a pluggable environment (DESIGN.md §16); null
     * means the real POSIX one.
     */
    PagedIndex(std::string dir, std::string fingerprint,
               io::IoEnv *io = nullptr);

    /** Removes every page file still on disk unless retainPages()
     *  handed them all to a checkpoint; after retainDurable(), pages
     *  an earlier snapshot references (the durable prefix) survive
     *  and only newer ones are removed. */
    ~PagedIndex();

    PagedIndex(const PagedIndex &) = delete;
    PagedIndex &operator=(const PagedIndex &) = delete;

    /** True iff a page directory was configured. */
    bool pagingEnabled() const { return !dir_.empty(); }

    /**
     * Insert @p key; true iff it was absent from BOTH tiers.  Exact:
     * a key evicted to a page is never reported new again.  Must not
     * race evict()/adoptPages() (the engines only insert from their
     * sequential join / serial loop).
     */
    bool insert(std::uint64_t key);

    /** True iff @p key is present in either tier.  Thread-safe
     *  against concurrent contains() and insert(). */
    bool contains(std::uint64_t key) const;

    /** Keys currently in the hot (in-RAM) tier. */
    std::size_t
    hotSize() const
    {
        return hotCount_.load(std::memory_order_relaxed);
    }

    /** Keys evicted to cold pages. */
    std::size_t coldSize() const { return coldCount_; }

    /** Total distinct keys across both tiers. */
    std::size_t size() const { return hotSize() + coldSize(); }

    /** Pre-size the hot tier for @p n keys (the resume path). */
    void reserve(std::size_t n);

    /** Visit every hot-tier key (unspecified order — the checkpoint
     *  writer sorts what it collects).  Cold keys are reachable only
     *  through their page files, by design. */
    template <typename Fn>
    void
    forEachHot(Fn &&fn) const
    {
        for (const Shard &s : shards_) {
            std::lock_guard<std::mutex> lk(s.m);
            s.keys.forEach(fn);
        }
    }

    /**
     * Evict hot shards (cyclic order, deterministic) until the hot
     * tier holds at most @p targetHot keys, writing the evicted keys
     * as sorted pages.  The hot tier is untouched on failure (real
     * I/O error or injected index-io-fail): partially written pages
     * are removed and false is returned — no key is ever lost.
     * Quiescent-point only; no-op (true) when paging is disabled.
     */
    bool evict(std::size_t targetHot);

    /** Page files currently on disk, in creation order (what a
     *  checkpoint records for the resume to adopt). */
    std::vector<std::string>
    pages() const
    {
        std::vector<std::string> out;
        out.reserve(pages_.size());
        for (const Page &p : pages_)
            out.push_back(p.path);
        return out;
    }

    /**
     * Adopt the page files a resumed snapshot references: each file
     * is re-read to rebuild its in-RAM summary (count, min/max,
     * bloom).  Damaged, torn, fingerprint-mismatched or unsorted
     * pages are refused with the structured reason.  Adopted pages
     * belong to the on-disk snapshot, never to this process: on
     * failure the destructor leaves every file in @p paths alone, so
     * one bad page cannot destroy the rest of the resume point.
     */
    snapshot::Status adoptPages(const std::vector<std::string> &paths);

    /** Hand the page files to the checkpoint that referenced them:
     *  the destructor will leave them for the resume. */
    void retainPages() { retained_ = true; }

    /** A checkpoint referencing the current pages just became
     *  durable: they are the new durable prefix (what retainDurable()
     *  preserves), superseding the previous snapshot's claim. */
    void markDurable() { durablePages_ = pages_.size(); }

    /** The latest durable snapshot is an *earlier* one (the final
     *  checkpoint write failed): keep the pages it references —
     *  adopted pages plus the last markDurable() prefix — and let the
     *  destructor delete only pages written after it. */
    void retainDurable() { keepDurable_ = true; }

    /** Sticky flag: some cold-page read failed (the probe answered
     *  conservatively); the engine must truncate as a fault. */
    bool
    ioFailed() const
    {
        return ioFailed_.load(std::memory_order_relaxed);
    }

    /** Human detail for the first I/O failure. */
    const std::string &ioNote() const { return ioNote_; }

    /** Eviction rounds performed so far (tests). */
    std::size_t evictionRounds() const { return evictions_; }

    /**
     * Deposit the index's telemetry — seen-pages, seen-evictions,
     * bloom-hits, bloom-misses — into @p reg and reset the tallies
     * (call once, at the end of an engine run).
     */
    void drainCounters(stats::StatsRegistry &reg);

    /** Keys per full page (fixed page capacity). */
    static constexpr std::size_t pageCapacity = 4096;

  private:
    static constexpr unsigned shardBits = 6;
    static constexpr std::size_t numShards = std::size_t{1}
                                             << shardBits;

    struct Shard
    {
        mutable std::mutex m;
        FlatU64Set keys;
    };

    /** One cold page's in-RAM summary. */
    struct Page
    {
        std::string path;
        std::uint64_t minKey = 0;
        std::uint64_t maxKey = 0;
        std::uint32_t count = 0;
        std::vector<std::uint64_t> bloom; ///< bit words
    };

    static std::size_t shardIndex(std::uint64_t key);
    Shard &shardFor(std::uint64_t k) { return shards_[shardIndex(k)]; }
    const Shard &
    shardFor(std::uint64_t k) const
    {
        return shards_[shardIndex(k)];
    }

    static void buildBloom(Page &p, const std::uint64_t *keys,
                           std::size_t n);
    static bool bloomMaybe(const Page &p, std::uint64_t key);

    /** Write one sorted chunk as a page file; false on I/O failure. */
    bool writePage(const std::uint64_t *keys, std::size_t n);

    /** Probe the cold tier (summaries first, page read on a bloom
     *  pass).  Conservatively false — with the sticky flag raised —
     *  when a page cannot be read. */
    bool coldContains(std::uint64_t key) const;

    /** Binary-search one page for @p key, via the decode cache; the
     *  page read and decode happen outside the cache lock.  False on
     *  read failure (sticky flag raised). */
    bool searchPage(std::size_t pageIdx, std::uint64_t key,
                    bool &found) const;

    snapshot::Status
    adoptPagesImpl(const std::vector<std::string> &paths);

    void noteIoFailure(const std::string &note) const;

    std::string dir_;
    std::string fingerprint_;
    io::IoEnv *io_;
    std::array<Shard, numShards> shards_;
    std::atomic<std::size_t> hotCount_{0};
    std::size_t coldCount_ = 0;
    std::vector<Page> pages_;
    std::size_t evictCursor_ = 0;
    bool retained_ = false;
    /** Leading pages_ entries referenced by the latest durable
     *  snapshot (adopted + last markDurable()).  Pages are only ever
     *  appended — a failed evict round rolls back its own appends —
     *  so the durable set is always a prefix. */
    std::size_t durablePages_ = 0;
    bool keepDurable_ = false;

    // A few decoded pages kept warm, direct-mapped by page index so
    // workers probing different pages neither serialize on one MRU
    // entry nor thrash it with alternating probes.  coldM_ guards
    // only the slot pointers; decode happens outside it.
    static constexpr std::size_t cacheWays = 8;
    struct CacheSlot
    {
        std::size_t idx = static_cast<std::size_t>(-1);
        std::shared_ptr<const std::vector<std::uint64_t>> keys;
    };
    mutable std::mutex coldM_;
    mutable std::array<CacheSlot, cacheWays> cache_;

    mutable std::atomic<bool> ioFailed_{false};
    mutable std::string ioNote_;

    std::size_t evictions_ = 0;
    std::size_t pagesWritten_ = 0;
    mutable std::atomic<std::uint64_t> bloomHits_{0};
    mutable std::atomic<std::uint64_t> bloomMisses_{0};
};

} // namespace satom
