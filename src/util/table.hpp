/**
 * @file
 * Minimal fixed-width ASCII table printer used by benches and examples to
 * emit paper-style result rows.
 */

#pragma once

#include <string>
#include <vector>

namespace satom
{

/**
 * Accumulates rows of strings and renders them with aligned columns.
 *
 * Example output:
 * @code
 *   test   | model | verdict
 *   -------+-------+--------
 *   SB     | SC    | forbidden
 * @endcode
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render the table to a string. */
    std::string render() const;

    /** Number of data rows added so far. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace satom
