/**
 * @file
 * Flat open-addressing set of 64-bit keys with SIMD group probing.
 *
 * The enumeration engine's seen-key sets hold millions of uniformly
 * distributed digests and never erase.  std::unordered_set pays a heap
 * node and a pointer chase per key; this set stores the keys directly
 * in one power-of-two slot array and probes them a cache-line group at
 * a time through kern::findU64 (SSE2/AVX2 compare-equal sweeps when
 * dispatched).  Zero is reserved as the empty-slot marker, with a side
 * flag covering the (legal) zero key.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/kernels.hpp"

namespace satom
{

/** Insert-only hash set of uint64_t keys (no erase). */
class FlatU64Set
{
  public:
    FlatU64Set() = default;

    /** True iff @p key is present. */
    bool
    contains(std::uint64_t key) const
    {
        if (key == 0)
            return hasZero_;
        if (slots_.empty())
            return false;
        const std::size_t mask = slots_.size() - 1;
        std::size_t g = startGroup(key);
        for (;;) {
            const std::uint64_t *grp = slots_.data() + g;
            if (kern::findU64(grp, kGroup, key) < kGroup)
                return true;
            if (kern::findU64(grp, kGroup, 0) < kGroup)
                return false; // an empty slot ends the probe chain
            g = (g + kGroup) & mask;
        }
    }

    /** Insert @p key; true iff it was not present. */
    bool
    insert(std::uint64_t key)
    {
        if (key == 0) {
            if (hasZero_)
                return false;
            hasZero_ = true;
            ++size_;
            return true;
        }
        if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7)
            grow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t g = startGroup(key);
        for (;;) {
            std::uint64_t *grp = slots_.data() + g;
            if (kern::findU64(grp, kGroup, key) < kGroup)
                return false;
            const std::size_t e = kern::findU64(grp, kGroup, 0);
            if (e < kGroup) {
                grp[e] = key;
                ++size_;
                return true;
            }
            g = (g + kGroup) & mask;
        }
    }

    /** Number of keys. */
    std::size_t size() const { return size_; }

    void
    clear()
    {
        slots_.clear();
        size_ = 0;
        hasZero_ = false;
    }

    /** Pre-size so @p n keys fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = kGroup * 2;
        while (n * 8 > cap * 7)
            cap *= 2;
        if (cap > slots_.size())
            rehash(cap);
    }

    /** Visit every key (slot order — callers needing canonical order
     *  must sort what they collect). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (hasZero_)
            fn(std::uint64_t{0});
        const std::size_t n = slots_.size();
        for (std::size_t i = kern::findNonZero(slots_.data(), n, 0);
             i < n;
             i = kern::findNonZero(slots_.data(), n, i + 1))
            fn(slots_[i]);
    }

  private:
    static constexpr std::size_t kGroup = 8;

    /** Group-aligned start position from a fibonacci-mixed key. */
    std::size_t
    startGroup(std::uint64_t key) const
    {
        const std::uint64_t h = key * 0x9e3779b97f4a7c15ull;
        // slots_.size() is a power of two and a multiple of kGroup.
        return static_cast<std::size_t>(
                   h & (slots_.size() - 1)) &
               ~(kGroup - 1);
    }

    void grow() { rehash(slots_.empty() ? 16 : slots_.size() * 2); }

    void
    rehash(std::size_t newCap)
    {
        std::vector<std::uint64_t> old;
        old.swap(slots_);
        slots_.assign(newCap, 0);
        for (std::uint64_t k : old) {
            if (!k)
                continue;
            const std::size_t mask = slots_.size() - 1;
            std::size_t g = startGroup(k);
            for (;;) {
                std::uint64_t *grp = slots_.data() + g;
                const std::size_t e = kern::findU64(grp, kGroup, 0);
                if (e < kGroup) {
                    grp[e] = k;
                    break;
                }
                g = (g + kGroup) & mask;
            }
        }
    }

    std::vector<std::uint64_t> slots_;
    std::size_t size_ = 0;
    bool hasZero_ = false;
};

} // namespace satom
