#include "stats.hpp"

#include <fstream>
#include <istream>
#include <sstream>

namespace satom::stats
{

namespace
{

constexpr CtrInfo kInfo[numCounters] = {
    // deterministic
    {"states-explored", false, true},
    {"states-generated", false, true},
    {"states-deduped", false, true},
    {"states-pruned", false, true},
    {"txn-aborts", false, true},
    {"states-stuck", false, true},
    {"executions", false, true},
    {"candidate-sets", false, true},
    {"closure-runs", false, true},
    {"closure-iterations", false, true},
    {"closure-edges", false, true},
    {"finalization-closures", false, true},
    {"max-graph-nodes", true, true},
    {"operational-states", false, true},
    {"operational-steps", false, true},
    {"serialization-steps", false, true},
    {"oracle-runs", false, true},
    {"closure-frontier-loads", false, true},
    {"closure-frontier-skipped", false, true},
    // telemetry
    {"gate-polls", false, false},
    {"waves", false, false},
    {"wave-items", false, false},
    {"max-wave-size", true, false},
    {"steals", false, false},
    {"checkpoints-written", false, false},
    {"spill-segments", false, false},
    {"spill-reload-bytes", false, false},
    {"simd-tier", true, false},
    {"min-wave-size", false, false, true},
    {"cache-hits", false, false},
    {"cache-misses", false, false},
    {"cache-canon-ms", false, false},
    {"wave-occupancy", false, false, true},
    {"checkpoint-cadence", true, false},
    {"jobs-admitted", false, false},
    {"jobs-shed", false, false},
    {"jobs-stale", false, false},
    {"jobs-dropped", false, false},
    {"jobs-cancelled", false, false},
    {"jobs-faulted", false, false},
    {"jobs-served", false, false},
    {"queue-depth-peak", true, false},
    {"read-only-trips", false, false},
    {"seen-evictions", false, false},
    {"seen-pages", false, false},
    {"bloom-hits", false, false},
    {"bloom-misses", false, false},
};

} // namespace

const CtrInfo &
info(Ctr c)
{
    return kInfo[static_cast<std::size_t>(c)];
}

void
StatsRegistry::merge(const StatsRegistry &o)
{
#if SATOM_STATS_ENABLED
    for (int i = 0; i < numCounters; ++i) {
        if (kInfo[i].maximum) {
            if (o.v_[i] > v_[i])
                v_[i] = o.v_[i];
        } else if (kInfo[i].minimum) {
            // 0 is "unset": any recorded trough beats it.
            if (o.v_[i] != 0 && (v_[i] == 0 || o.v_[i] < v_[i]))
                v_[i] = o.v_[i];
        } else {
            v_[i] += o.v_[i];
        }
    }
#else
    (void)o;
#endif
}

bool
StatsRegistry::deterministicEquals(const StatsRegistry &o) const
{
#if SATOM_STATS_ENABLED
    for (int i = 0; i < numCounters; ++i)
        if (kInfo[i].deterministic && v_[i] != o.v_[i])
            return false;
#else
    (void)o;
#endif
    return true;
}

bool
StatsRegistry::empty() const
{
#if SATOM_STATS_ENABLED
    for (int i = 0; i < numCounters; ++i)
        if (v_[i] != 0)
            return false;
#endif
    return true;
}

std::string
StatsRegistry::table() const
{
#if SATOM_STATS_ENABLED
    std::string out;
    for (int i = 0; i < numCounters; ++i) {
        if (v_[i] == 0)
            continue;
        std::string name = kInfo[i].name;
        if (!kInfo[i].deterministic)
            name += " ~";
        out += "  ";
        out += name;
        // pad to a fixed column so the numbers line up
        constexpr std::size_t col = 26;
        if (name.size() + 2 < col)
            out.append(col - name.size() - 2, ' ');
        out += std::to_string(v_[i]);
        out += '\n';
    }
    if (out.empty())
        out = "  (no counters fired)\n";
    return out;
#else
    return "  (stats compiled out; rebuild with -DSATOM_STATS=ON)\n";
#endif
}

std::string
StatsRegistry::json() const
{
#if SATOM_STATS_ENABLED
    std::string out = "{";
    bool first = true;
    for (int i = 0; i < numCounters; ++i) {
        if (!kInfo[i].deterministic || v_[i] == 0)
            continue;
        if (!first)
            out += ", ";
        first = false;
        out += '"';
        out += kInfo[i].name;
        out += "\": ";
        out += std::to_string(v_[i]);
    }
    out += '}';
    return out;
#else
    return "null";
#endif
}

std::string
StatsRegistry::fullJson() const
{
#if SATOM_STATS_ENABLED
    std::string out = "{";
    bool first = true;
    for (int i = 0; i < numCounters; ++i) {
        if (v_[i] == 0)
            continue;
        if (!first)
            out += ", ";
        first = false;
        out += '"';
        out += kInfo[i].name;
        out += "\": ";
        out += std::to_string(v_[i]);
    }
    out += '}';
    return out;
#else
    return "null";
#endif
}

std::string
StatsRegistry::serialize() const
{
#if SATOM_STATS_ENABLED
    int k = 0;
    for (int i = 0; i < numCounters; ++i)
        if (kInfo[i].deterministic && v_[i] != 0)
            ++k;
    std::string out = std::to_string(k);
    for (int i = 0; i < numCounters; ++i) {
        if (!kInfo[i].deterministic || v_[i] == 0)
            continue;
        out += ' ';
        out += std::to_string(i);
        out += ':';
        out += std::to_string(v_[i]);
    }
    return out;
#else
    return "0";
#endif
}

bool
StatsRegistry::deserialize(std::istream &in)
{
    long k = 0;
    if (!(in >> k) || k < 0 || k > numCounters)
        return false;
    for (long n = 0; n < k; ++n) {
        std::string tok;
        if (!(in >> tok))
            return false;
        const std::size_t colon = tok.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= tok.size())
            return false;
        long idx = -1;
        unsigned long long val = 0;
        try {
            std::size_t done = 0;
            idx = std::stol(tok.substr(0, colon), &done);
            if (done != colon)
                return false;
            val = std::stoull(tok.substr(colon + 1), &done);
            if (done != tok.size() - colon - 1)
                return false;
        } catch (const std::exception &) {
            return false;
        }
        if (idx < 0 || idx >= numCounters ||
            !kInfo[idx].deterministic)
            return false;
#if SATOM_STATS_ENABLED
        v_[static_cast<std::size_t>(idx)] = val;
#else
        (void)val;
#endif
    }
    return true;
}

std::string
LatencyHistogram::json() const
{
    std::string out = "{\"count\": " + std::to_string(count());
    out += ", \"p50_us\": " + std::to_string(percentileUs(0.50));
    out += ", \"p99_us\": " + std::to_string(percentileUs(0.99));
    out += "}";
    return out;
}

TraceLog::TraceLog()
#if SATOM_STATS_ENABLED
    : epoch_(std::chrono::steady_clock::now())
#endif
{
}

std::int64_t
TraceLog::nowUs() const
{
#if SATOM_STATS_ENABLED
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
#else
    return 0;
#endif
}

void
TraceLog::complete(const std::string &name, const std::string &cat,
                   std::int64_t tsUs, std::int64_t durUs, int tid,
                   const std::string &argsJson)
{
#if SATOM_STATS_ENABLED
    std::lock_guard<std::mutex> lock(m_);
    events_.push_back({name, cat, tsUs, durUs, tid, argsJson});
#else
    (void)name;
    (void)cat;
    (void)tsUs;
    (void)durUs;
    (void)tid;
    (void)argsJson;
#endif
}

std::size_t
TraceLog::size() const
{
#if SATOM_STATS_ENABLED
    std::lock_guard<std::mutex> lock(m_);
    return events_.size();
#else
    return 0;
#endif
}

std::string
TraceLog::render() const
{
#if SATOM_STATS_ENABLED
    auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };

    std::lock_guard<std::mutex> lock(m_);
    std::string out = "{\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event &e = events_[i];
        out += "  {\"name\": \"" + escape(e.name) +
               "\", \"cat\": \"" + escape(e.cat) +
               "\", \"ph\": \"X\", \"ts\": " + std::to_string(e.tsUs) +
               ", \"dur\": " + std::to_string(e.durUs) +
               ", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
        if (!e.argsJson.empty())
            out += ", \"args\": " + e.argsJson;
        out += "}";
        out += i + 1 < events_.size() ? ",\n" : "\n";
    }
    out += "]}\n";
    return out;
#else
    return "{\"traceEvents\": []}\n";
#endif
}

bool
TraceLog::writeTo(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << render();
    return static_cast<bool>(f);
}

PhaseTimer::PhaseTimer(TraceLog *log, std::string name,
                       std::string cat, int tid)
#if SATOM_STATS_ENABLED
    : log_(log), name_(std::move(name)), cat_(std::move(cat)),
      tid_(tid)
#endif
{
#if SATOM_STATS_ENABLED
    if (log_)
        startUs_ = log_->nowUs();
#else
    (void)log;
    (void)name;
    (void)cat;
    (void)tid;
#endif
}

PhaseTimer::~PhaseTimer()
{
#if SATOM_STATS_ENABLED
    if (log_)
        log_->complete(name_, cat_, startUs_,
                       log_->nowUs() - startUs_, tid_);
#endif
}

} // namespace satom::stats
