/**
 * @file
 * Crash-safe file writing, shared by every persistent artifact in the
 * system (fuzz reports, campaign journals, engine snapshots, spill
 * segments, seen pages, the result cache).
 *
 * Two patterns cover all of them:
 *
 *  - writeFileAtomic(): the durable tmp+rename pattern.  The bytes
 *    land in a uniquely named temp file (`path.satomtmp.<pid>.<seq>`,
 *    so concurrent writers to one path can never clobber each other's
 *    temp), are fsync'd through the fd *before* the rename, and the
 *    parent directory is fsync'd *after* it — so after any crash a
 *    reader sees either the old content or the whole new content,
 *    never a prefix, and the rename itself is durable.  POSIX
 *    rename() is atomic within a filesystem.
 *
 *  - AppendLog: the flushed append-only pattern of the campaign
 *    journal.  Each line reaches the OS in one write before the
 *    caller retires the unit of work it records, so a kill at any
 *    instant loses at most the in-flight record — and leaves at most
 *    one torn tail line, which the reader-side parsers are required
 *    to skip.
 *
 * Both run through the pluggable I/O environment (util/io_env.hpp):
 * the overloads without an env use the real POSIX one; the crash
 * sweep records and simulates the same code paths through
 * RecordingIoEnv/SimIoEnv.
 *
 * Neither helper throws: failures are reported through return values,
 * because the writers run on campaign/engine hot paths where an
 * exception would tear down the very run the artifact is protecting.
 */

#pragma once

#include <memory>
#include <string>

#include "util/io_env.hpp"

namespace satom
{

/**
 * Write @p content to @p path via tmp+fsync+rename+dirsync through
 * @p env.  False on any I/O failure (the temp file is removed on a
 * failed write; @p path is never left torn).
 */
bool writeFileAtomic(io::IoEnv &env, const std::string &path,
                     const std::string &content);

/** writeFileAtomic through the real POSIX environment. */
bool writeFileAtomic(const std::string &path,
                     const std::string &content);

/**
 * Read the whole of @p path into @p out.  False if the file cannot
 * be opened or read; @p out is cleared then.
 */
bool readFileBytes(io::IoEnv &env, const std::string &path,
                   std::string &out);
bool readFileBytes(const std::string &path, std::string &out);

/**
 * True iff @p path is a writeFileAtomic temp file (crash debris when
 * seen after recovery; the crash sweep uses the pattern to identify
 * atomically written final paths in a recorded I/O log).
 */
bool isAtomicTmpPath(const std::string &path);

/**
 * TESTING ONLY — revert the durability half of writeFileAtomic (no fd
 * fsync before the rename, no directory fsync after): the sensitivity
 * mode satom_crashsweep uses to prove its detector actually fires.
 * Never enable outside the sweep.
 */
void setUnsafeAtomicWrites(bool on);
bool unsafeAtomicWrites();

/**
 * Append-only log with per-line flushing: the journal discipline.
 * open() either truncates (a fresh log) or appends (a resumed one);
 * appendLine() hands one line to the OS in a single write before
 * returning, making the record crash-durable up to the page cache.
 */
class AppendLog
{
  public:
    /** Open @p path via @p env; truncate when @p fresh. */
    bool
    open(io::IoEnv &env, const std::string &path, bool fresh)
    {
        f_ = env.openWrite(path, fresh);
        return f_ != nullptr;
    }

    /** Open through the real POSIX environment. */
    bool
    open(const std::string &path, bool fresh)
    {
        return open(io::realIoEnv(), path, fresh);
    }

    bool isOpen() const { return f_ != nullptr; }

    /** Write @p line + '\n' in one write; false on I/O failure. */
    bool
    appendLine(const std::string &line)
    {
        if (!f_)
            return false;
        std::string buf = line;
        buf += '\n';
        return f_->write(buf);
    }

  private:
    std::unique_ptr<io::WriteFile> f_;
};

} // namespace satom
