/**
 * @file
 * Crash-safe file writing, shared by every persistent artifact in the
 * system (fuzz reports, campaign journals, engine snapshots, spill
 * segments).
 *
 * Two patterns cover all of them:
 *
 *  - writeFileAtomic(): the tmp+rename pattern.  The bytes land in
 *    `path.tmp` first and are renamed over `path` only once the write
 *    and flush completed, so a reader never observes a torn file: it
 *    sees either the old content or the new, never a prefix.  POSIX
 *    rename() is atomic within a filesystem.  This was previously
 *    inlined in the satom_fuzz report path; the snapshot writer and
 *    the litmus_runner checkpoint path share it now.
 *
 *  - AppendLog: the flushed append-only pattern of the campaign
 *    journal.  Each line is written and flushed before the caller
 *    retires the unit of work it records, so a kill at any instant
 *    loses at most the in-flight record — and leaves at most one torn
 *    tail line, which the reader-side parsers are required to skip.
 *
 * Neither helper throws: failures are reported through return values,
 * because the writers run on campaign/engine hot paths where an
 * exception would tear down the very run the artifact is protecting.
 */

#pragma once

#include <fstream>
#include <string>

namespace satom
{

/**
 * Write @p content to @p path via tmp+rename.  False on any I/O
 * failure (the tmp file is removed on a failed write; @p path is
 * never left torn).
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &content);

/**
 * Read the whole of @p path into @p out.  False if the file cannot
 * be opened or read; @p out is cleared then.
 */
bool readFileBytes(const std::string &path, std::string &out);

/**
 * Append-only log with per-line flushing: the journal discipline.
 * open() either truncates (a fresh log) or appends (a resumed one);
 * appendLine() writes one line and flushes it to the OS before
 * returning, making the record crash-durable up to the page cache.
 */
class AppendLog
{
  public:
    /** Open @p path; truncate when @p fresh, append otherwise. */
    bool
    open(const std::string &path, bool fresh)
    {
        f_.open(path, fresh ? std::ios::trunc : std::ios::app);
        return f_.good();
    }

    bool isOpen() const { return f_.is_open(); }

    /** Write @p line + '\n' and flush; false on I/O failure. */
    bool
    appendLine(const std::string &line)
    {
        if (!f_.is_open())
            return false;
        f_ << line << '\n';
        f_.flush();
        return f_.good();
    }

  private:
    std::ofstream f_;
};

} // namespace satom
