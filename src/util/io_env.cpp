#include "util/io_env.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace satom::io
{

std::string
dirnameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

// ---------------------------------------------------------------------
// RealIoEnv
// ---------------------------------------------------------------------

namespace
{

class RealWriteFile final : public WriteFile
{
  public:
    explicit RealWriteFile(int fd) : fd_(fd) {}
    ~RealWriteFile() override { close(); }

    bool
    write(const char *data, std::size_t n) override
    {
        if (fd_ < 0)
            return false;
        while (n > 0) {
            const ssize_t w = ::write(fd_, data, n);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            data += w;
            n -= static_cast<std::size_t>(w);
        }
        return true;
    }

    bool
    sync() override
    {
        return fd_ >= 0 && ::fsync(fd_) == 0;
    }

    bool
    close() override
    {
        if (fd_ < 0)
            return true;
        const int r = ::close(fd_);
        fd_ = -1;
        return r == 0;
    }

  private:
    int fd_;
};

class RealIoEnv final : public IoEnv
{
  public:
    std::unique_ptr<WriteFile>
    openWrite(const std::string &path, bool truncate) override
    {
        const int flags = O_WRONLY | O_CREAT | O_CLOEXEC |
                          (truncate ? O_TRUNC : O_APPEND);
        const int fd = ::open(path.c_str(), flags, 0644);
        if (fd < 0)
            return nullptr;
        return std::make_unique<RealWriteFile>(fd);
    }

    bool
    readFile(const std::string &path, std::string &out) override
    {
        out.clear();
        const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0)
            return false;
        char buf[1 << 16];
        while (true) {
            const ssize_t r = ::read(fd, buf, sizeof buf);
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                ::close(fd);
                out.clear();
                return false;
            }
            if (r == 0)
                break;
            out.append(buf, static_cast<std::size_t>(r));
        }
        ::close(fd);
        return true;
    }

    bool
    exists(const std::string &path) override
    {
        return ::access(path.c_str(), F_OK) == 0;
    }

    bool
    rename(const std::string &from, const std::string &to) override
    {
        return ::rename(from.c_str(), to.c_str()) == 0;
    }

    bool
    remove(const std::string &path) override
    {
        return ::remove(path.c_str()) == 0;
    }

    bool
    syncDir(const std::string &dir) override
    {
        const int fd =
            ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
        if (fd < 0)
            return false;
        const int r = ::fsync(fd);
        ::close(fd);
        // Some filesystems refuse directory fsync with EINVAL; that
        // is the platform's durability ceiling, not a write failure.
        return r == 0 || errno == EINVAL || errno == ENOTSUP;
    }

    bool
    mkdirs(const std::string &dir) override
    {
        if (dir.empty())
            return false;
        std::string partial;
        std::size_t pos = 0;
        while (pos <= dir.size()) {
            const std::size_t slash = dir.find('/', pos);
            const std::size_t end =
                slash == std::string::npos ? dir.size() : slash;
            partial = dir.substr(0, end);
            pos = end + 1;
            if (partial.empty())
                continue; // leading '/'
            if (::mkdir(partial.c_str(), 0755) != 0 &&
                errno != EEXIST)
                return false;
        }
        return true;
    }

    std::vector<std::string>
    list(const std::string &dir) override
    {
        std::vector<std::string> out;
        DIR *d = ::opendir(dir.c_str());
        if (!d)
            return out;
        while (const dirent *e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name == "." || name == "..")
                continue;
            out.push_back(name);
        }
        ::closedir(d);
        std::sort(out.begin(), out.end());
        return out;
    }
};

} // namespace

IoEnv &
realIoEnv()
{
    static RealIoEnv env;
    return env;
}

// ---------------------------------------------------------------------
// RecordingIoEnv
// ---------------------------------------------------------------------

class RecordingWriteFile final : public WriteFile
{
  public:
    RecordingWriteFile(RecordingIoEnv &env, std::string path,
                       std::unique_ptr<WriteFile> inner)
        : env_(env), path_(std::move(path)), inner_(std::move(inner))
    {
    }
    ~RecordingWriteFile() override { close(); }

    bool
    write(const char *data, std::size_t n) override
    {
        if (!inner_->write(data, n))
            return false;
        IoStep s;
        s.op = IoStep::Op::Write;
        s.path = path_;
        s.data.assign(data, n);
        env_.record(std::move(s));
        return true;
    }

    bool
    sync() override
    {
        if (!inner_->sync())
            return false;
        env_.record({IoStep::Op::Sync, path_, "", ""});
        return true;
    }

    bool
    close() override
    {
        if (closed_)
            return true;
        closed_ = true;
        if (!inner_->close())
            return false;
        env_.record({IoStep::Op::Close, path_, "", ""});
        return true;
    }

  private:
    RecordingIoEnv &env_;
    std::string path_;
    std::unique_ptr<WriteFile> inner_;
    bool closed_ = false;
};

void
RecordingIoEnv::record(IoStep s)
{
    std::lock_guard<std::mutex> lk(m_);
    log_.steps.push_back(std::move(s));
}

std::unique_ptr<WriteFile>
RecordingIoEnv::openWrite(const std::string &path, bool truncate)
{
    auto inner = inner_.openWrite(path, truncate);
    if (!inner)
        return nullptr;
    record({truncate ? IoStep::Op::OpenTrunc : IoStep::Op::OpenAppend,
            path, "", ""});
    return std::make_unique<RecordingWriteFile>(*this, path,
                                                std::move(inner));
}

bool
RecordingIoEnv::rename(const std::string &from, const std::string &to)
{
    if (!inner_.rename(from, to))
        return false;
    record({IoStep::Op::Rename, from, to, ""});
    return true;
}

bool
RecordingIoEnv::remove(const std::string &path)
{
    if (!inner_.remove(path))
        return false;
    record({IoStep::Op::Remove, path, "", ""});
    return true;
}

bool
RecordingIoEnv::syncDir(const std::string &dir)
{
    if (!inner_.syncDir(dir))
        return false;
    record({IoStep::Op::SyncDir, dir, "", ""});
    return true;
}

bool
RecordingIoEnv::mkdirs(const std::string &dir)
{
    if (!inner_.mkdirs(dir))
        return false;
    record({IoStep::Op::Mkdirs, dir, "", ""});
    return true;
}

// ---------------------------------------------------------------------
// SimIoEnv
// ---------------------------------------------------------------------

class SimWriteFile final : public WriteFile
{
  public:
    SimWriteFile(SimIoEnv &env, std::string path)
        : env_(env), path_(std::move(path))
    {
    }

    bool
    write(const char *data, std::size_t n) override
    {
        std::lock_guard<std::mutex> lk(env_.m_);
        env_.files_[path_].data.append(data, n);
        return true;
    }

    bool
    sync() override
    {
        std::lock_guard<std::mutex> lk(env_.m_);
        SimIoEnv::File &f = env_.files_[path_];
        f.synced = f.data.size();
        return true;
    }

    bool close() override { return true; }

  private:
    SimIoEnv &env_;
    std::string path_;
};

std::unique_ptr<WriteFile>
SimIoEnv::openWrite(const std::string &path, bool truncate)
{
    std::lock_guard<std::mutex> lk(m_);
    File &f = files_[path];
    if (truncate) {
        // Documented simplification: truncation is durable at once
        // (only fresh journals and unique temp names truncate here).
        f.data.clear();
        f.synced = 0;
    }
    return std::make_unique<SimWriteFile>(*this, path);
}

bool
SimIoEnv::readFile(const std::string &path, std::string &out)
{
    std::lock_guard<std::mutex> lk(m_);
    out.clear();
    const auto it = files_.find(path);
    if (it == files_.end())
        return false;
    out = it->second.data;
    return true;
}

bool
SimIoEnv::exists(const std::string &path)
{
    std::lock_guard<std::mutex> lk(m_);
    return files_.count(path) != 0;
}

bool
SimIoEnv::rename(const std::string &from, const std::string &to)
{
    std::lock_guard<std::mutex> lk(m_);
    const auto it = files_.find(from);
    if (it == files_.end())
        return false;
    files_[to] = std::move(it->second);
    files_.erase(it);
    return true;
}

bool
SimIoEnv::remove(const std::string &path)
{
    std::lock_guard<std::mutex> lk(m_);
    return files_.erase(path) != 0;
}

bool
SimIoEnv::mkdirs(const std::string &)
{
    return true; // directories are implicit in the flat path map
}

std::vector<std::string>
SimIoEnv::list(const std::string &dir)
{
    std::lock_guard<std::mutex> lk(m_);
    // Direct children of @p dir only, mirroring readdir.
    const std::string prefix =
        dir.empty() || dir.back() == '/' ? dir : dir + "/";
    std::vector<std::string> out;
    for (const auto &[path, f] : files_) {
        (void)f;
        if (path.size() <= prefix.size() ||
            path.compare(0, prefix.size(), prefix) != 0)
            continue;
        const std::string rest = path.substr(prefix.size());
        if (rest.find('/') != std::string::npos)
            continue;
        out.push_back(rest);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::map<std::string, std::string>
SimIoEnv::crashImage(CrashVariant variant) const
{
    std::lock_guard<std::mutex> lk(m_);
    std::map<std::string, std::string> image;
    for (const auto &[path, f] : files_) {
        switch (variant) {
        case CrashVariant::Clean:
            image[path] = f.data;
            break;
        case CrashVariant::Torn: {
            // The durable prefix plus half (rounded up) of the
            // unsynced suffix: a mid-flush page-cache tear.
            const std::size_t unsynced = f.data.size() - f.synced;
            image[path] =
                f.data.substr(0, f.synced + (unsynced + 1) / 2);
            break;
        }
        case CrashVariant::Reorder:
            // The directory entry reached disk, unsynced data never
            // did.
            image[path] = f.data.substr(0, f.synced);
            break;
        }
    }
    return image;
}

void
SimIoEnv::reset(std::map<std::string, std::string> image)
{
    std::lock_guard<std::mutex> lk(m_);
    files_.clear();
    for (auto &[path, content] : image) {
        File f;
        f.synced = content.size();
        f.data = std::move(content);
        files_[path] = std::move(f);
    }
}

std::vector<std::string>
SimIoEnv::allPaths() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::vector<std::string> out;
    out.reserve(files_.size());
    for (const auto &[path, f] : files_) {
        (void)f;
        out.push_back(path);
    }
    return out;
}

std::string
SimIoEnv::content(const std::string &path) const
{
    std::lock_guard<std::mutex> lk(m_);
    const auto it = files_.find(path);
    return it == files_.end() ? std::string{} : it->second.data;
}

// ---------------------------------------------------------------------
// replaySteps
// ---------------------------------------------------------------------

void
replaySteps(const IoLog &log, std::size_t k, SimIoEnv &env)
{
    // Open handles are keyed by path: the recorded workloads never
    // hold two concurrent handles to one file (writeFileAtomic uses
    // unique temp names; journals have one writer).
    std::map<std::string, std::unique_ptr<WriteFile>> open;
    const std::size_t n = std::min(k, log.steps.size());
    for (std::size_t i = 0; i < n; ++i) {
        const IoStep &s = log.steps[i];
        switch (s.op) {
        case IoStep::Op::OpenTrunc:
            open[s.path] = env.openWrite(s.path, true);
            break;
        case IoStep::Op::OpenAppend:
            open[s.path] = env.openWrite(s.path, false);
            break;
        case IoStep::Op::Write: {
            auto it = open.find(s.path);
            if (it == open.end())
                it = open
                         .emplace(s.path,
                                  env.openWrite(s.path, false))
                         .first;
            it->second->write(s.data.data(), s.data.size());
            break;
        }
        case IoStep::Op::Sync: {
            const auto it = open.find(s.path);
            if (it != open.end())
                it->second->sync();
            break;
        }
        case IoStep::Op::Close: {
            const auto it = open.find(s.path);
            if (it != open.end()) {
                it->second->close();
                open.erase(it);
            }
            break;
        }
        case IoStep::Op::Rename:
            open.erase(s.path);
            env.rename(s.path, s.other);
            break;
        case IoStep::Op::Remove:
            open.erase(s.path);
            env.remove(s.path);
            break;
        case IoStep::Op::SyncDir:
            env.syncDir(s.path);
            break;
        case IoStep::Op::Mkdirs:
            env.mkdirs(s.path);
            break;
        }
    }
}

} // namespace satom::io
