#include "table.hpp"

#include <algorithm>
#include <sstream>

namespace satom
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < width.size(); ++i) {
            const std::string &c = i < cells.size() ? cells[i] : "";
            out << c << std::string(width[i] - c.size(), ' ');
            if (i + 1 < width.size())
                out << " | ";
        }
        out << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        for (std::size_t i = 0; i < width.size(); ++i) {
            out << std::string(width[i], '-');
            if (i + 1 < width.size())
                out << "-+-";
        }
        out << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

} // namespace satom
