/**
 * @file
 * The run-control layer: deadlines, cooperative cancellation, memory
 * ceilings and structured truncation for every search in the system.
 *
 * All of the engines (graph enumeration, the operational machines, the
 * transaction-serialization search, the differential oracles) are
 * exponential searches; the paper's own case studies — speculation and
 * TSO — are exactly the models that blow the frontier up.  A search
 * that stops early must say *why* it stopped, because the consumers
 * differ: a state-capped oracle side degrades to Inconclusive, a
 * deadline-capped fuzz seed is retried at reduced budget, a cancelled
 * run discards nothing, a worker fault is a contained error.  The old
 * single `complete` bool lost that distinction; a `Truncation` reason
 * carries it end-to-end.
 *
 * A `RunBudget` is a small copyable value (the cancellation token is a
 * shared handle) injected into each engine's options.  Engines poll a
 * `BudgetGate` on their hot loop; the gate is strided so the common
 * disarmed case costs one branch, and once it trips it stays tripped.
 *
 * The `fault` namespace is the SATOM_FAULT test-only injection hook:
 * it lets tests (and CI) plant a worker exception, an allocation
 * failure, a slow-path stall or a mid-campaign kill to prove that the
 * containment paths actually contain.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>

namespace satom
{

/** Why a search stopped before exhausting its space. */
enum class Truncation
{
    None,        ///< ran to completion
    StateCap,    ///< a state/step budget was exhausted
    Deadline,    ///< the wall-clock deadline passed
    MemoryCap,   ///< the approximate memory ceiling was exceeded
    Cancelled,   ///< the cancellation token was triggered
    WorkerFault, ///< a worker task faulted; partial results kept
};

/** Stable report name: "none", "state-cap", "deadline", ... */
const char *toString(Truncation t);

/** Parse a report name back; false if unknown. */
bool truncationFromString(const std::string &name, Truncation &out);

/**
 * Shared cooperative-cancellation handle.  Default-constructed tokens
 * are empty (never cancelled, no allocation); make() creates shared
 * state that every copy observes.  All operations are thread-safe.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    static CancelToken
    make()
    {
        CancelToken t;
        t.flag_ = std::make_shared<std::atomic<bool>>(false);
        return t;
    }

    bool valid() const { return static_cast<bool>(flag_); }

    void
    requestCancel() const
    {
        if (flag_)
            flag_->store(true, std::memory_order_relaxed);
    }

    bool
    cancelRequested() const
    {
        return flag_ && flag_->load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/**
 * The limits one run operates under.  Copyable; copies share the
 * cancellation token.  Default-constructed budgets are unconstrained
 * and cost nothing to poll.
 */
struct RunBudget
{
    using Clock = std::chrono::steady_clock;

    /** Wall-clock deadline; the epoch value means "none". */
    Clock::time_point deadline{};

    /**
     * Approximate process-RSS ceiling in bytes (0 = none).  Checked
     * against /proc/self/statm, so the figure is whole-process and
     * approximate by design — the cap is a safety valve against the
     * frontier eating the machine, not an allocator.
     */
    std::size_t maxRssBytes = 0;

    /** Cooperative cancellation; empty = never cancelled. */
    CancelToken cancel;

    bool
    hasDeadline() const
    {
        return deadline != Clock::time_point{};
    }

    /** True iff polling this budget can never trip. */
    bool
    unconstrained() const
    {
        return !hasDeadline() && maxRssBytes == 0 && !cancel.valid();
    }

    /** Budget whose deadline is @p ms from now. */
    static RunBudget deadlineInMs(long ms);
};

/** Approximate process resident-set size; 0 if unavailable. */
std::size_t approxRssBytes();

/**
 * Strided poller over one RunBudget.  poll() is designed for hot
 * loops: with an unconstrained budget it is one branch; otherwise the
 * clock/RSS/token reads happen every @p stride calls.  Once a limit
 * trips, the gate is sticky and every subsequent poll returns the same
 * reason.  Not thread-safe — give each worker its own gate (they can
 * share the budget; the token is the only shared state).
 */
class BudgetGate
{
  public:
    explicit BudgetGate(const RunBudget &budget, int stride = 32)
        : budget_(budget), active_(!budget.unconstrained()),
          stride_(stride > 0 ? stride : 1)
    {
    }

    /** Any constraint present at all? */
    bool active() const { return active_; }

    /** The sticky truncation reason (None until something trips). */
    Truncation tripped() const { return tripped_; }

    /** Cheap check; returns the reason once a limit trips. */
    Truncation
    poll()
    {
        if (!active_ || tripped_ != Truncation::None)
            return tripped_;
        if (count_++ % stride_ != 0)
            return Truncation::None;
        return check();
    }

  private:
    Truncation check();

    RunBudget budget_;
    Truncation tripped_ = Truncation::None;
    bool active_ = false;
    int stride_ = 32;
    unsigned count_ = 0;
};

/**
 * SATOM_FAULT — test-only fault injection.
 *
 * Armed either programmatically (tests) or from the environment
 * variable `SATOM_FAULT=<site>[:<n>]` (CLI runs under ctest/CI).
 * Sites:
 *
 *   worker-throw:N        the N-th hit of the "worker" site throws
 *                         std::runtime_error (a faulting worker task)
 *   alloc-fail:N          the N-th hit of the "worker" site throws
 *                         std::bad_alloc (an allocation failure)
 *   stall:MS              every hit of the "worker" site sleeps MS
 *                         milliseconds (a slow-path stall)
 *   kill-after-journal:N  the N-th hit of the "journal" site reports
 *                         fire (satom_fuzz then _Exit(137)s, the
 *                         SIGKILL-mid-campaign simulation)
 *   kill-after-checkpoint:N  the N-th hit of the "checkpoint" site
 *                         reports fire (litmus_runner then
 *                         _Exit(137)s: SIGKILL between an engine
 *                         checkpoint and run completion)
 *   torn-snapshot:N       the N-th snapshot write truncates its byte
 *                         stream mid-record (a crash/disk-full tear,
 *                         which the reader must reject as Torn)
 *   spill-io-fail:N       the N-th spill-segment write or reload
 *                         fails as if the disk did (the engine must
 *                         degrade to a MemoryCap truncation, not UB)
 *   torn-cache:N          the N-th result-cache save truncates its
 *                         byte stream (reopening must see Torn and
 *                         start cold)
 *   flip-cache:N          the N-th result-cache save flips a payload
 *                         bit (reopening must see BadCrc, not load
 *                         a damaged entry)
 *   stale-cache:N         the N-th result-cache save stamps an old
 *                         schema fingerprint (reopening must see
 *                         CfgMismatch — the version-bump case)
 *   accept-fail:N         the N-th connection accept in satomd fails
 *                         as if the kernel did (EMFILE et al.); the
 *                         accept loop must log and keep serving
 *   job-drop:N            the N-th job dequeued by a satomd worker is
 *                         dropped before execution (a scheduler
 *                         fault); the client must get a structured
 *                         `dropped` response, not silence
 *   slow-client:N         the N-th response write in satomd behaves
 *                         as if the client stopped reading (write
 *                         timeout); the server must drop that
 *                         connection and cancel its jobs, never
 *                         block a worker
 *   index-io-fail:N       from the N-th hit on, paged-index page
 *                         writes/reads fail as if the disk did (the
 *                         engine must degrade to a WorkerFault
 *                         truncation, not UB and never a wrong dedup
 *                         answer)
 *   kill-after-evict:N    the N-th completed cold-tier eviction
 *                         reports fire (litmus_runner then
 *                         _Exit(137)s: SIGKILL right after seen-set
 *                         pages hit the disk)
 *
 * The disarmed fast path is a single relaxed atomic load.
 */
namespace fault
{

enum class Site
{
    None,
    WorkerThrow,
    AllocFail,
    Stall,
    KillAfterJournal,
    KillAfterCheckpoint,
    TornSnapshot,
    SpillIoFail,
    TornCache,
    FlipCache,
    StaleCache,
    AcceptFail,
    JobDrop,
    SlowClient,
    IndexIoFail,
    KillAfterEvict,
};

/** Arm programmatically; n is the hit index (or ms for Stall). */
void arm(Site site, long n = 1);

/** Arm from a "<site>[:<n>]" spec; false if unparseable. */
bool armFromSpec(const std::string &spec);

/** Disarm and reset the hit counter. */
void disarm();

/** True iff any site is armed (after lazily reading SATOM_FAULT). */
bool armed();

/**
 * The "worker" injection point: call from worker-task bodies.  Throws
 * or stalls according to the armed site; no-op when disarmed.
 */
void maybeInjectWorker();

/**
 * The "journal" injection point: returns true when the armed
 * kill-after-journal count is reached (the caller performs the kill,
 * keeping process exit out of library code).
 */
bool journalKillDue();

/**
 * The "checkpoint" injection point: returns true when the armed
 * kill-after-checkpoint count is reached (the CLI performs the kill,
 * keeping process exit out of library code).
 */
bool checkpointKillDue();

/**
 * The "snapshot write" injection point: returns true when the armed
 * torn-snapshot count is reached; the snapshot writer then truncates
 * the stream it persists, simulating a torn tail.
 */
bool snapshotTornDue();

/**
 * The "spill I/O" injection point: returns true when the armed
 * spill-io-fail count is reached; the spill queue then reports the
 * write/reload as failed.
 */
bool spillIoFailDue();

/**
 * The result-cache save injection points: true when the armed
 * torn-cache / flip-cache / stale-cache count is reached; the cache
 * writer then corrupts the bytes it persists (the corresponding
 * reopen must degrade to a structured cold-cache status).
 */
bool cacheTornDue();
bool cacheFlipDue();
bool cacheStaleDue();

/**
 * The service injection points: true when the armed accept-fail /
 * job-drop / slow-client count is reached.  The accept loop then
 * fails one accept, a queue worker drops one dequeued job (answering
 * with a structured `dropped` response), or a response write is
 * treated as a client write timeout (the connection is dropped and
 * its jobs cancelled).
 */
bool acceptFailDue();
bool jobDropDue();
bool slowClientDue();

/**
 * The paged-index I/O injection point: true from the armed
 * index-io-fail count on (sticky, like spill-io-fail); the index then
 * reports the page write/read as failed and the engine truncates as
 * WorkerFault.
 */
bool indexIoFailDue();

/**
 * The eviction injection point: returns true when the armed
 * kill-after-evict count is reached (the CLI performs the kill,
 * keeping process exit out of library code).
 */
bool evictKillDue();

} // namespace fault

} // namespace satom
