/**
 * @file
 * Dynamic bitset tuned for small dense node-id universes.
 *
 * The execution graphs manipulated by the framework rarely exceed a few
 * hundred nodes, so the transitive-closure machinery in src/core keeps one
 * predecessor and one successor Bitset per node.  The type is deliberately
 * simple: contiguous 64-bit words, value semantics, cheap copies.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/kernels.hpp"

namespace satom
{

/**
 * A resizable set of small non-negative integers backed by 64-bit words.
 *
 * All binary operations require both operands to have the same capacity;
 * this is asserted in debug builds and is an invariant of the graph code
 * (every bitset in a graph is resized in lockstep with the node table).
 */
class Bitset
{
  public:
    Bitset() = default;

    /** Construct with room for @p nbits bits, all cleared. */
    explicit Bitset(std::size_t nbits)
        : nbits_(nbits), words_((nbits + 63) / 64, 0)
    {
    }

    /** Number of bits this set can hold. */
    std::size_t size() const { return nbits_; }

    /** Grow (never shrink) capacity to @p nbits, preserving contents. */
    void
    resize(std::size_t nbits)
    {
        if (nbits > nbits_) {
            nbits_ = nbits;
            words_.resize((nbits + 63) / 64, 0);
        }
    }

    /** Set bit @p i. */
    void set(std::size_t i) { words_[i >> 6] |= word_bit(i); }

    /** Clear bit @p i. */
    void reset(std::size_t i) { words_[i >> 6] &= ~word_bit(i); }

    /** Test bit @p i. */
    bool
    test(std::size_t i) const
    {
        return (words_[i >> 6] & word_bit(i)) != 0;
    }

    /** Clear every bit, keeping capacity. */
    void
    clear()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** True iff at least one bit is set. */
    bool
    any() const
    {
        return kern::anyWord(words_.data(), words_.size());
    }

    /** True iff no bit is set. */
    bool none() const { return !any(); }

    /** Population count. */
    std::size_t
    count() const
    {
        return kern::popcount(words_.data(), words_.size());
    }

    /**
     * this |= the first @p n words of @p w, capped at this set's own
     * word count (callers pass rows whose tail words are zero).
     */
    void
    orWords(const std::uint64_t *w, std::size_t n)
    {
        if (n > words_.size())
            n = words_.size();
        kern::orInto(words_.data(), w, n);
    }

    /** this &= the first @p n words of @p w (missing words are zero). */
    void
    andWords(const std::uint64_t *w, std::size_t n)
    {
        const std::size_t common = std::min(n, words_.size());
        kern::andInto(words_.data(), w, common);
        for (std::size_t i = common; i < words_.size(); ++i)
            words_[i] = 0;
    }

    /** In-place union. */
    Bitset &
    operator|=(const Bitset &other)
    {
        grow_to(other);
        kern::orInto(words_.data(), other.words_.data(),
                     other.words_.size());
        return *this;
    }

    /** In-place intersection. */
    Bitset &
    operator&=(const Bitset &other)
    {
        const std::size_t common =
            std::min(words_.size(), other.words_.size());
        kern::andInto(words_.data(), other.words_.data(), common);
        for (std::size_t i = common; i < words_.size(); ++i)
            words_[i] = 0;
        return *this;
    }

    /** In-place difference (this \\ other). */
    Bitset &
    operator-=(const Bitset &other)
    {
        const std::size_t n = std::min(words_.size(), other.words_.size());
        kern::andNotInto(words_.data(), other.words_.data(), n);
        return *this;
    }

    friend Bitset
    operator|(Bitset a, const Bitset &b)
    {
        a |= b;
        return a;
    }

    friend Bitset
    operator&(Bitset a, const Bitset &b)
    {
        a &= b;
        return a;
    }

    bool
    operator==(const Bitset &other) const
    {
        const std::size_t n =
            std::max(words_.size(), other.words_.size());
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t a = i < words_.size() ? words_[i] : 0;
            const std::uint64_t b =
                i < other.words_.size() ? other.words_[i] : 0;
            if (a != b)
                return false;
        }
        return true;
    }

    /** True iff every bit of this set is also set in @p other. */
    bool
    isSubsetOf(const Bitset &other) const
    {
        const std::size_t common =
            std::min(words_.size(), other.words_.size());
        if (kern::anyAndNot(words_.data(), other.words_.data(),
                            common))
            return false;
        // Any bit of ours beyond other's storage cannot be in other.
        return !kern::anyWord(words_.data() + common,
                              words_.size() - common);
    }

    /** Invoke @p fn with the index of every set bit, ascending. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t n = words_.size();
        for (std::size_t wi = kern::findNonZero(words_.data(), n, 0);
             wi < n;
             wi = kern::findNonZero(words_.data(), n, wi + 1)) {
            std::uint64_t w = words_[wi];
            while (w) {
                const int b = __builtin_ctzll(w);
                fn(wi * 64 + static_cast<std::size_t>(b));
                w &= w - 1;
            }
        }
    }

    /** Raw words, used by hashing and canonical encodings. */
    const std::vector<std::uint64_t> &words() const { return words_; }

  private:
    static std::uint64_t
    word_bit(std::size_t i)
    {
        return std::uint64_t{1} << (i & 63);
    }

    void
    grow_to(const Bitset &other)
    {
        if (other.nbits_ > nbits_)
            resize(other.nbits_);
    }

    std::size_t nbits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace satom
