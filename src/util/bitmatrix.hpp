/**
 * @file
 * A bit matrix: N rows of bits over one contiguous word buffer.
 *
 * The execution graph keeps its transitive closure as one predecessor
 * and one successor bit row per node.  Storing those rows as separate
 * Bitset objects makes every Behavior fork pay ~2N heap allocations;
 * the enumerator forks on every Load resolution, so the copy cost of
 * the closure dominates the search.  BitMatrix packs all rows into a
 * single vector<uint64_t> with a common row stride: copying a graph's
 * closure is two buffer memcpys, and re-using a scratch graph performs
 * no allocation at all once capacity is warm.
 *
 * Rows grow in lockstep with the node table.  When the row count
 * exceeds the current stride capacity the matrix re-lays itself out
 * with a doubled stride (amortized O(1) per added row).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitset.hpp"

namespace satom
{

/** Square-ish bit matrix with contiguous storage and row views. */
class BitMatrix
{
  public:
    /**
     * Read-only view of one row.  Mirrors the read API of Bitset so
     * closure consumers can iterate without materializing a copy; use
     * the implicit Bitset conversion when a mutable copy is needed.
     */
    class RowView
    {
      public:
        RowView(const std::uint64_t *words, std::size_t nwords,
                std::size_t nbits)
            : words_(words), nwords_(nwords), nbits_(nbits)
        {
        }

        bool
        test(std::size_t i) const
        {
            return (words_[i >> 6] &
                    (std::uint64_t{1} << (i & 63))) != 0;
        }

        std::size_t
        count() const
        {
            return kern::popcount(words_, nwords_);
        }

        bool
        any() const
        {
            return kern::anyWord(words_, nwords_);
        }

        bool none() const { return !any(); }

        /** Invoke @p fn with every set bit index, ascending. */
        template <typename Fn>
        void
        forEach(Fn &&fn) const
        {
            for (std::size_t wi =
                     kern::findNonZero(words_, nwords_, 0);
                 wi < nwords_;
                 wi = kern::findNonZero(words_, nwords_, wi + 1)) {
                std::uint64_t w = words_[wi];
                while (w) {
                    const int b = __builtin_ctzll(w);
                    fn(wi * 64 + static_cast<std::size_t>(b));
                    w &= w - 1;
                }
            }
        }

        const std::uint64_t *words() const { return words_; }
        std::size_t nwords() const { return nwords_; }

        /** Logical bit capacity (the owning graph's node count). */
        std::size_t bits() const { return nbits_; }

        /** Materialize as an owning Bitset of the logical capacity. */
        operator Bitset() const
        {
            Bitset out(nbits_);
            out.orWords(words_, nwords_);
            return out;
        }

      private:
        const std::uint64_t *words_;
        std::size_t nwords_;
        std::size_t nbits_;
    };

    int rows() const { return rows_; }

    /** Words allocated per row. */
    std::size_t stride() const { return stride_; }

    /** View of row @p r with logical capacity @p nbits (<= rows()). */
    RowView
    row(int r, std::size_t nbits) const
    {
        return RowView(words_.data() +
                           static_cast<std::size_t>(r) * stride_,
                       stride_, nbits);
    }

    /** Append one zeroed row, growing the stride when required. */
    void
    addRow()
    {
        ++rows_;
        const std::size_t needed =
            (static_cast<std::size_t>(rows_) + 63) / 64;
        if (needed > stride_) {
            relayout(stride_ == 0 ? needed
                                  : std::max(stride_ * 2, needed));
        }
        words_.resize(static_cast<std::size_t>(rows_) * stride_, 0);
    }

    /** Pre-size for @p nrows rows (no rows are added). */
    void
    reserve(int nrows)
    {
        const std::size_t s =
            (static_cast<std::size_t>(nrows) + 63) / 64;
        if (s > stride_)
            relayout(s);
        words_.reserve(static_cast<std::size_t>(nrows) *
                       std::max(stride_, s));
    }

    void
    set(int r, std::size_t bit)
    {
        words_[static_cast<std::size_t>(r) * stride_ + (bit >> 6)] |=
            std::uint64_t{1} << (bit & 63);
    }

    bool
    test(int r, std::size_t bit) const
    {
        return (words_[static_cast<std::size_t>(r) * stride_ +
                       (bit >> 6)] &
                (std::uint64_t{1} << (bit & 63))) != 0;
    }

    /** Row @p r |= @p b (b must not be wider than the stride). */
    void
    orInto(int r, const Bitset &b)
    {
        std::uint64_t *dst =
            words_.data() + static_cast<std::size_t>(r) * stride_;
        const auto &src = b.words();
        kern::orInto(dst, src.data(), std::min(stride_, src.size()));
    }

    /** Assign from @p other, re-using this matrix's buffer. */
    void
    assignFrom(const BitMatrix &other)
    {
        rows_ = other.rows_;
        stride_ = other.stride_;
        words_ = other.words_; // vector assign: no realloc if capacity
    }

    void
    clear()
    {
        rows_ = 0;
        stride_ = 0;
        words_.clear();
    }

  private:
    void
    relayout(std::size_t newStride)
    {
        std::vector<std::uint64_t> next(
            static_cast<std::size_t>(rows_) * newStride, 0);
        for (int r = 0; r < rows_; ++r) {
            const std::uint64_t *src =
                words_.data() + static_cast<std::size_t>(r) * stride_;
            std::uint64_t *dst =
                next.data() + static_cast<std::size_t>(r) * newStride;
            for (std::size_t i = 0; i < stride_; ++i)
                dst[i] = src[i];
        }
        words_.swap(next);
        stride_ = newStride;
    }

    int rows_ = 0;
    std::size_t stride_ = 0;
    std::vector<std::uint64_t> words_;
};

/** dst |= row view (word-wise; the view's tail words are zero). */
inline Bitset &
operator|=(Bitset &dst, const BitMatrix::RowView &v)
{
    dst.orWords(v.words(), v.nwords());
    return dst;
}

/** dst &= row view (missing view words are treated as zero). */
inline Bitset &
operator&=(Bitset &dst, const BitMatrix::RowView &v)
{
    dst.andWords(v.words(), v.nwords());
    return dst;
}

} // namespace satom
