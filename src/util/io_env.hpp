/**
 * @file
 * The pluggable I/O environment behind every persistence path
 * (DESIGN.md §16).
 *
 * Everything the system ever makes durable — engine snapshots, spill
 * segments, seen pages, the result cache, fuzz journals and reports —
 * flows through one seam: an IoEnv of open/write/fsync/rename/remove/
 * list operations.  Three implementations cover production and
 * torture testing:
 *
 *  - RealIoEnv (realIoEnv()): the POSIX passthrough.  Writable files
 *    are raw fds, sync() is fsync(2), syncDir() opens the directory
 *    and fsyncs it — the two calls the tmp+rename pattern needs for
 *    OS-level durability (data before rename, the directory entry
 *    after).
 *
 *  - RecordingIoEnv: wraps any inner env and logs every durable-state
 *    mutation as a numbered IoStep.  The crash-point sweep
 *    (tools/satom_crashsweep) replays step prefixes of that log to
 *    materialize every reachable crash state.
 *
 *  - SimIoEnv: an in-memory filesystem that models the *persisted* vs
 *    *volatile* distinction.  Each file carries its full logical
 *    content plus the length its last sync() made durable;
 *    crashImage() then renders what a power cut would leave under a
 *    chosen variant:
 *
 *      Clean   — every pending write survived (the lucky crash).
 *      Torn    — un-fsynced tails survive only as a prefix (half of
 *                the unsynced suffix), the page-cache tear.
 *      Reorder — directory operations (create/rename/remove) reached
 *                disk but NO un-fsynced data did: the classic
 *                metadata-before-data reordering.  A renamed file
 *                whose bytes were never fsynced shows up torn or
 *                empty at its final name — exactly the bug a missing
 *                fsync-before-rename causes.
 *
 *    Deliberate simplification: open(truncate) applies immediately
 *    and durably (the only truncating writers here are fresh journal
 *    opens and unique-named temp files, never a live artifact), and
 *    directory entries always survive a crash — losing an un-synced
 *    rename only ever re-exposes *older* durable content, which every
 *    reader already handles, so the sim spends its fidelity on the
 *    dangerous direction instead.
 *
 * Failures are reported through return values, never exceptions: the
 * writers run on campaign/engine hot paths.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace satom::io
{

/** One writable file handle (created by IoEnv::openWrite). */
class WriteFile
{
  public:
    virtual ~WriteFile() = default;

    /** Append @p n bytes; false on I/O failure. */
    virtual bool write(const char *data, std::size_t n) = 0;

    bool
    write(std::string_view s)
    {
        return write(s.data(), s.size());
    }

    /** Make everything written so far crash-durable (fsync). */
    virtual bool sync() = 0;

    /** Close the handle (idempotent); false on close-time failure. */
    virtual bool close() = 0;
};

/** The persistence seam: every durable artifact goes through one. */
class IoEnv
{
  public:
    virtual ~IoEnv() = default;

    /**
     * Open @p path for writing: truncated when @p truncate, appended
     * otherwise (the file is created either way).  Null on failure.
     */
    virtual std::unique_ptr<WriteFile>
    openWrite(const std::string &path, bool truncate) = 0;

    /** Read the whole of @p path into @p out; false (with @p out
     *  cleared) if it cannot be opened or read. */
    virtual bool readFile(const std::string &path,
                          std::string &out) = 0;

    virtual bool exists(const std::string &path) = 0;

    /** Atomically rename @p from to @p to (same filesystem). */
    virtual bool rename(const std::string &from,
                        const std::string &to) = 0;

    virtual bool remove(const std::string &path) = 0;

    /** Make @p dir's entries (renames, creates, removes) durable. */
    virtual bool syncDir(const std::string &dir) = 0;

    /** Create @p dir and any missing parents. */
    virtual bool mkdirs(const std::string &dir) = 0;

    /** Names (not paths) of the entries in @p dir, sorted. */
    virtual std::vector<std::string> list(const std::string &dir) = 0;
};

/** The process-wide POSIX environment. */
IoEnv &realIoEnv();

/** The directory component of @p path ("." when there is none). */
std::string dirnameOf(const std::string &path);

// ---------------------------------------------------------------------
// RecordingIoEnv: the numbered durable-mutation log.
// ---------------------------------------------------------------------

/** One recorded durable-state mutation. */
struct IoStep
{
    enum class Op
    {
        OpenTrunc,  ///< openWrite(path, truncate=true)
        OpenAppend, ///< openWrite(path, truncate=false)
        Write,      ///< data appended to path's open handle
        Sync,       ///< fsync of path's open handle
        Close,      ///< close of path's open handle
        Rename,     ///< rename path -> other
        Remove,     ///< remove path
        SyncDir,    ///< directory fsync of path
        Mkdirs,     ///< create path (and parents)
    };

    Op op = Op::Write;
    std::string path;
    std::string other; ///< rename destination
    std::string data;  ///< Write payload
};

/** The full mutation history of one recorded run. */
struct IoLog
{
    std::vector<IoStep> steps;
};

class SimIoEnv;

/**
 * Re-apply the first @p k steps of @p log to @p env (a fresh sim),
 * reconstructing the filesystem state — including per-file sync
 * watermarks — as it stood the instant before step k executed.
 */
void replaySteps(const IoLog &log, std::size_t k, SimIoEnv &env);

/**
 * Wraps @p inner, forwarding every call and appending an IoStep for
 * each successful durable-state mutation.  Reads are passed through
 * unrecorded (they mutate nothing).  Not thread-safe beyond what a
 * mutex over the log provides: recorded workloads run single-threaded
 * so the step order is deterministic.
 */
class RecordingIoEnv final : public IoEnv
{
  public:
    explicit RecordingIoEnv(IoEnv &inner) : inner_(inner) {}

    std::unique_ptr<WriteFile> openWrite(const std::string &path,
                                         bool truncate) override;
    bool readFile(const std::string &path, std::string &out) override
    {
        return inner_.readFile(path, out);
    }
    bool exists(const std::string &path) override
    {
        return inner_.exists(path);
    }
    bool rename(const std::string &from,
                const std::string &to) override;
    bool remove(const std::string &path) override;
    bool syncDir(const std::string &dir) override;
    bool mkdirs(const std::string &dir) override;
    std::vector<std::string> list(const std::string &dir) override
    {
        return inner_.list(dir);
    }

    const IoLog &log() const { return log_; }

  private:
    friend class RecordingWriteFile;
    void record(IoStep s);

    IoEnv &inner_;
    IoLog log_;
    std::mutex m_;
};

// ---------------------------------------------------------------------
// SimIoEnv: the in-memory persisted-vs-volatile filesystem.
// ---------------------------------------------------------------------

class SimIoEnv final : public IoEnv
{
  public:
    /** How a crash treats data written since the last fsync. */
    enum class CrashVariant
    {
        Clean,   ///< everything pending survived
        Torn,    ///< unsynced tails survive as a half prefix
        Reorder, ///< entries survived, unsynced data did not
    };

    std::unique_ptr<WriteFile> openWrite(const std::string &path,
                                         bool truncate) override;
    bool readFile(const std::string &path, std::string &out) override;
    bool exists(const std::string &path) override;
    bool rename(const std::string &from,
                const std::string &to) override;
    bool remove(const std::string &path) override;
    bool syncDir(const std::string &) override { return true; }
    bool mkdirs(const std::string &dir) override;
    std::vector<std::string> list(const std::string &dir) override;

    /** The surviving files (path -> content) after a power cut under
     *  @p variant, given the current live + sync-watermark state. */
    std::map<std::string, std::string>
    crashImage(CrashVariant variant) const;

    /** Replace the whole filesystem with @p image, every byte of it
     *  durable (the recovered-from-disk state). */
    void reset(std::map<std::string, std::string> image);

    /** Every live path, sorted (the sweep's stray-file check). */
    std::vector<std::string> allPaths() const;

    /** Live content of @p path ("" when absent). */
    std::string content(const std::string &path) const;

  private:
    friend class SimWriteFile;

    struct File
    {
        std::string data;
        std::size_t synced = 0; ///< durable prefix length
    };

    mutable std::mutex m_;
    std::map<std::string, File> files_;
};

} // namespace satom::io
