/**
 * @file
 * Runtime-dispatched word-vector kernels (the SIMD layer).
 *
 * Every hot loop of the enumeration engine is word-parallel bit work:
 * the transitive-closure rows OR/AND into each other on every edge
 * insertion, the Store Atomicity rules intersect pred/succ rows, the
 * dedup path hashes raw closure words, and the seen-key sets probe
 * 64-bit digests.  This header is the single place those primitives
 * live.  Each primitive has three implementations — portable scalar,
 * SSE2 (128-bit) and AVX2 (256-bit) — compiled with per-function
 * target attributes (no special compiler flags), and one of them is
 * selected once at startup by CPUID probing, overridable with
 * `SATOM_SIMD=avx2|sse2|scalar` (requests above what the host
 * supports clamp down; unknown values are ignored).
 *
 * Correctness contract: every tier computes bit-identical results for
 * every input, including misaligned pointers and ragged tail lengths.
 * All dedup keys, report JSON, snapshots and fuzz journals are
 * therefore byte-identical across tiers — the dispatch choice is
 * recorded only in the telemetry counter `simd-tier`, never in any
 * deterministic output (tests/test_kernels.cpp pins this with a
 * randomized cross-tier property suite).
 *
 * The inline wrappers below short-circuit very small inputs to local
 * scalar loops: closure rows of litmus-sized graphs are one or two
 * words, where an indirect call costs more than the work.  The
 * dispatch table is only consulted above kInlineWords; tests exercise
 * the dispatched implementations directly through tableFor().
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace satom::kern
{

/** Dispatch tiers, best-last.  Values are stable (telemetry uses
 *  tier+1 so scalar is distinguishable from "not recorded"). */
enum class Tier : int
{
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
};

/** The word-vector primitives one tier implements. */
struct KernelTable
{
    /** dst[i] |= src[i] for i < n. */
    void (*orInto)(std::uint64_t *dst, const std::uint64_t *src,
                   std::size_t n);
    /** dst[i] &= src[i] for i < n. */
    void (*andInto)(std::uint64_t *dst, const std::uint64_t *src,
                    std::size_t n);
    /** dst[i] &= ~src[i] for i < n. */
    void (*andNotInto)(std::uint64_t *dst, const std::uint64_t *src,
                       std::size_t n);
    /** True iff some (a[i] & b[i]) != 0 (early exit). */
    bool (*anyAnd)(const std::uint64_t *a, const std::uint64_t *b,
                   std::size_t n);
    /** True iff some (a[i] & ~b[i]) != 0 (early exit). */
    bool (*anyAndNot)(const std::uint64_t *a, const std::uint64_t *b,
                      std::size_t n);
    /** True iff some w[i] != 0 (early exit). */
    bool (*anyWord)(const std::uint64_t *w, std::size_t n);
    /** Total population count of w[0..n). */
    std::size_t (*popcount)(const std::uint64_t *w, std::size_t n);
    /** Index of the first nonzero word at or after @p from, or n. */
    std::size_t (*findNonZero)(const std::uint64_t *w, std::size_t n,
                               std::size_t from);
    /**
     * dst[i] = premix(src[i]): the per-word input finalizer of
     * StreamHash64 (v *= 0xff51afd7ed558ccd; v ^= v >> 33).  The
     * sequential combine stays scalar, so batched digests equal the
     * word-at-a-time ones on every tier.
     */
    void (*premix)(std::uint64_t *dst, const std::uint64_t *src,
                   std::size_t n);
    /** Index of the first slot equal to @p key, or n (probe groups). */
    std::size_t (*findU64)(const std::uint64_t *slots, std::size_t n,
                           std::uint64_t key);
};

namespace detail
{
/** Active table; constant-initialized to scalar so pre-main uses are
 *  safe, upgraded to the detected tier by a startup initializer. */
extern std::atomic<const KernelTable *> g_active;
} // namespace detail

/** The currently dispatched kernel table. */
inline const KernelTable &
table()
{
    return *detail::g_active.load(std::memory_order_relaxed);
}

/** The table implementing @p t (clamped to what the host supports). */
const KernelTable &tableFor(Tier t);

/** Best tier the host CPU supports. */
Tier bestSupportedTier();

/** Tier currently dispatched. */
Tier activeTier();

/**
 * Force the dispatch to @p t (test hook; also how the SATOM_SIMD
 * override is applied).  Returns false — leaving the dispatch
 * unchanged — when the host cannot execute @p t.
 */
bool setTier(Tier t);

/** Stable lowercase name: "scalar", "sse2", "avx2". */
const char *tierName(Tier t);

/** Inputs below this word count run the local scalar loops. */
constexpr std::size_t kInlineWords = 4;

inline void
orInto(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    if (n < kInlineWords) {
        for (std::size_t i = 0; i < n; ++i)
            dst[i] |= src[i];
        return;
    }
    table().orInto(dst, src, n);
}

inline void
andInto(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    if (n < kInlineWords) {
        for (std::size_t i = 0; i < n; ++i)
            dst[i] &= src[i];
        return;
    }
    table().andInto(dst, src, n);
}

inline void
andNotInto(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    if (n < kInlineWords) {
        for (std::size_t i = 0; i < n; ++i)
            dst[i] &= ~src[i];
        return;
    }
    table().andNotInto(dst, src, n);
}

inline bool
anyAnd(const std::uint64_t *a, const std::uint64_t *b, std::size_t n)
{
    if (n < kInlineWords) {
        for (std::size_t i = 0; i < n; ++i)
            if (a[i] & b[i])
                return true;
        return false;
    }
    return table().anyAnd(a, b, n);
}

inline bool
anyAndNot(const std::uint64_t *a, const std::uint64_t *b, std::size_t n)
{
    if (n < kInlineWords) {
        for (std::size_t i = 0; i < n; ++i)
            if (a[i] & ~b[i])
                return true;
        return false;
    }
    return table().anyAndNot(a, b, n);
}

inline bool
anyWord(const std::uint64_t *w, std::size_t n)
{
    if (n < kInlineWords) {
        for (std::size_t i = 0; i < n; ++i)
            if (w[i])
                return true;
        return false;
    }
    return table().anyWord(w, n);
}

inline std::size_t
popcount(const std::uint64_t *w, std::size_t n)
{
    if (n < kInlineWords) {
        std::size_t c = 0;
        for (std::size_t i = 0; i < n; ++i)
            c += static_cast<std::size_t>(__builtin_popcountll(w[i]));
        return c;
    }
    return table().popcount(w, n);
}

inline std::size_t
findNonZero(const std::uint64_t *w, std::size_t n, std::size_t from)
{
    if (n - from < kInlineWords || from >= n) {
        for (std::size_t i = from; i < n; ++i)
            if (w[i])
                return i;
        return n;
    }
    return table().findNonZero(w, n, from);
}

inline void
premix(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    if (n < kInlineWords) {
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t v = src[i];
            v *= 0xff51afd7ed558ccdull;
            v ^= v >> 33;
            dst[i] = v;
        }
        return;
    }
    table().premix(dst, src, n);
}

inline std::size_t
findU64(const std::uint64_t *slots, std::size_t n, std::uint64_t key)
{
    if (n < kInlineWords) {
        for (std::size_t i = 0; i < n; ++i)
            if (slots[i] == key)
                return i;
        return n;
    }
    return table().findU64(slots, n, key);
}

} // namespace satom::kern
