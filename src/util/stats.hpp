/**
 * @file
 * Search observability: per-search counter registries, RAII phase
 * timers and Chrome trace-event export.
 *
 * Every engine in the system (graph enumeration, the parallel wave
 * loop, the operational machines, the transaction-serialization
 * search, the differential oracles) is an exponential search, and
 * after the parallel/fuzzing/run-control layers we can *run* huge
 * searches but not *see* them.  This layer answers "where do states,
 * dedup pressure and closure work go" with two instruments:
 *
 *  - `StatsRegistry`: a fixed set of named monotonic counters.  Each
 *    counter is either *deterministic* (a property of the search
 *    space — states generated/deduped/pruned, candidate sets built,
 *    closure recomputations — identical for a serial and a parallel
 *    run of the same job, any worker count) or *telemetry*
 *    (scheduling-dependent — wave shapes, steal counts, budget-gate
 *    polls).  Only the deterministic class is exported into reports
 *    that promise byte-identity (`satom_fuzz --json`, bench JSON);
 *    the human `--stats` table prints both, telemetry marked `~`.
 *    Parallel engines keep one registry shard per worker (inside the
 *    per-worker EnumStats accumulators) and merge shards with the
 *    same deterministic sequential join that merges outcomes, so the
 *    registry is as reproducible as the result it describes.
 *
 *  - `TraceLog` + `PhaseTimer`: coarse-grained phases (one per model
 *    enumeration, per operational machine, per frontier wave) recorded
 *    as Chrome trace-event JSON.  Load the file in about://tracing or
 *    https://ui.perfetto.dev to see where the wall-clock went.  Timers
 *    are intentionally coarse: counters answer "how much work", the
 *    trace answers "when" — per-behavior events would swamp both the
 *    log and the hot path.
 *
 * Zero cost when off: configure with -DSATOM_STATS=OFF and every
 * method here compiles to an empty inline body (the registries carry
 * no storage), so the enumeration hot path keeps its numbers.  The
 * default is ON in every build type; the measured overhead is a few
 * counter increments per explored behavior (see DESIGN.md §10 for the
 * Release measurement).
 */

#pragma once

#ifndef SATOM_STATS_ENABLED
#define SATOM_STATS_ENABLED 1
#endif

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace satom::stats
{

/** True iff the build carries real counters (SATOM_STATS=ON). */
constexpr bool
enabled()
{
    return SATOM_STATS_ENABLED != 0;
}

/**
 * Every counter the system records.  Order is the export order and
 * the journal serialization order: append new counters at the end of
 * their class and bump the satom_fuzz journal version (the per-seed
 * stats ride in journal records; a reordered enum would silently
 * reshuffle resumed campaigns).
 */
enum class Ctr : int
{
    // -- deterministic: search-space shape, worker-count independent --
    StatesExplored,     ///< behaviors taken off the worklist
    StatesGenerated,    ///< behaviors created by Load resolution
    StatesDeduped,      ///< forks pruned as duplicate Load-Store states
    StatesPruned,       ///< forks rolled back (Store Atomicity)
    TxnAborts,          ///< forks discarded for transaction conflicts
    StatesStuck,        ///< non-terminal behaviors with no eligible Load
    Executions,         ///< distinct complete executions
    CandidateSets,      ///< candidates(L) sets built
    ClosureRuns,        ///< Store Atomicity closure invocations
    ClosureIterations,  ///< closure fixpoint iterations
    ClosureEdges,       ///< `@` edges inserted by the closure
    FinalizationCloses, ///< closure re-runs checking last-Store combos
    MaxGraphNodes,      ///< largest graph encountered (maximum)
    OperationalStates,  ///< operational-machine states visited
    OperationalSteps,   ///< operational-machine instructions executed
    SerializationSteps, ///< txn serialization-search DFS steps
    OracleRuns,         ///< differential oracles evaluated
    ClosureFrontierLoads,   ///< loads examined by incremental closure
    ClosureFrontierSkipped, ///< loads skipped as outside the frontier

    // -- telemetry: scheduling/mode dependent, never byte-compared --
    GatePolls,          ///< budget-gate polls on the hot loops
    Waves,              ///< parallel frontier waves dispatched
    WaveItems,          ///< frontier items processed across all waves
    MaxWaveSize,        ///< largest single wave (maximum)
    Steals,             ///< successful work-steals in the pool
    CheckpointsWritten, ///< engine snapshots persisted this run
    SpillSegments,      ///< frontier segments spilled to disk
    SpillReloadBytes,   ///< spill segment bytes read back in
    SimdTier,           ///< dispatched kernel tier + 1 (maximum)
    MinWaveSize,        ///< smallest single wave (minimum)
    // Result-cache traffic is telemetry by construction: a cache hit
    // replays the exact deterministic result the miss path computes,
    // so reports stay byte-identical whether an entry was warm, and
    // hit/miss ordering under parallel seeds is scheduling-dependent.
    CacheHits,          ///< enumerations served by the result cache
    CacheMisses,        ///< cache consults that ran the engine
    CacheCanonMs,       ///< canonicalization time, ms ceiling per call
    WaveOccupancy,      ///< thinnest wave as % of workers (minimum)
    CheckpointCadence,  ///< autotuned checkpoint period (maximum)
    // Service-plane traffic (satomd): admission, shedding and job
    // outcomes are load- and timing-dependent by nature.
    JobsAdmitted,       ///< jobs accepted into the priority queue
    JobsShed,           ///< submissions rejected at admission
    JobsStale,          ///< jobs dropped at dequeue past deadline
    JobsDropped,        ///< jobs dropped by fault injection
    JobsCancelled,      ///< jobs cancelled by client disconnect
    JobsFaulted,        ///< jobs whose worker faulted (contained)
    JobsServed,         ///< jobs executed to a response
    QueueDepthPeak,     ///< deepest total queue backlog (maximum)
    ReadOnlyTrips,      ///< times the load monitor entered read-only
    // Out-of-core dedup index (§15).  Telemetry by construction: the
    // index answers exactly regardless of what was evicted when, so
    // page/eviction/bloom traffic depends on the cap and the probe
    // order, never on the result.
    SeenEvictions,      ///< hot-tier eviction rounds performed
    SeenPages,          ///< cold index pages written
    BloomHits,          ///< cold probes pruned by a page bloom filter
    BloomMisses,        ///< cold probes that had to read a page

    Count_,
};

constexpr int numCounters = static_cast<int>(Ctr::Count_);

/** Static description of one counter. */
struct CtrInfo
{
    const char *name;   ///< stable report key, e.g. "states-explored"
    bool maximum;       ///< merges by max instead of sum
    bool deterministic; ///< identical for serial vs parallel runs
    bool minimum = false; ///< merges by min over nonzero (0 = unset)
};

/** Metadata for @p c (valid for every value below Ctr::Count_). */
const CtrInfo &info(Ctr c);

/**
 * A per-search set of monotonic counters.  Copyable value type; a
 * parallel engine gives each worker its own shard and merges them at
 * the join.  With SATOM_STATS=OFF the class is empty and every method
 * an inline no-op.
 */
class StatsRegistry
{
  public:
    /** Bump counter @p c by @p n (sum semantics). */
    void
    add(Ctr c, std::uint64_t n = 1)
    {
#if SATOM_STATS_ENABLED
        v_[static_cast<std::size_t>(c)] += n;
#else
        (void)c;
        (void)n;
#endif
    }

    /** Raise maximum-counter @p c to at least @p n. */
    void
    peak(Ctr c, std::uint64_t n)
    {
#if SATOM_STATS_ENABLED
        auto &slot = v_[static_cast<std::size_t>(c)];
        if (n > slot)
            slot = n;
#else
        (void)c;
        (void)n;
#endif
    }

    /**
     * Lower minimum-counter @p c toward @p n.  Zero means "never
     * recorded" (the sentinel the merge honors), so a trough of a real
     * zero cannot be represented — callers record n >= 1.
     */
    void
    trough(Ctr c, std::uint64_t n)
    {
#if SATOM_STATS_ENABLED
        auto &slot = v_[static_cast<std::size_t>(c)];
        if (slot == 0 || n < slot)
            slot = n;
#else
        (void)c;
        (void)n;
#endif
    }

    std::uint64_t
    get(Ctr c) const
    {
#if SATOM_STATS_ENABLED
        return v_[static_cast<std::size_t>(c)];
#else
        (void)c;
        return 0;
#endif
    }

    /** Fold @p o in: sums add, maxima take the larger side. */
    void merge(const StatsRegistry &o);

    /** Equality over the deterministic counters only. */
    bool deterministicEquals(const StatsRegistry &o) const;

    /** True iff every counter is zero (also true when compiled out). */
    bool empty() const;

    /**
     * Two-column human table of all nonzero counters; telemetry rows
     * are marked with a trailing `~` (scheduling-dependent).
     */
    std::string table() const;

    /**
     * Deterministic JSON object of the nonzero *deterministic*
     * counters, in enum order: `{"states-explored": 12, ...}`.  `{}`
     * when none fired; `null` when stats are compiled out — so a
     * report's byte-identity contract holds within any one build.
     */
    std::string json() const;

    /**
     * JSON object of *every* nonzero counter, telemetry included.
     * For diagnostics and benchmark records only — telemetry (bloom
     * traffic, eviction rounds, wave sizes) varies run to run, so
     * this must never feed a byte-identity-compared report.
     */
    std::string fullJson() const;

    /**
     * Journal token form of the deterministic counters:
     * `k i:v i:v ...` (k nonzero entries, enum-index:value pairs).
     * Compiled-out builds serialize `0`.
     */
    std::string serialize() const;

    /**
     * Parse the token form back from @p in; false on malformed input
     * (the caller treats the journal record as corrupt).  Counter
     * indices outside the current enum are rejected, so a journal
     * from a different schema reruns its seeds instead of loading
     * garbage.
     */
    bool deserialize(std::istream &in);

  private:
#if SATOM_STATS_ENABLED
    std::array<std::uint64_t, numCounters> v_{};
#endif
};

/**
 * Lock-free log2-bucketed latency histogram (microsecond samples).
 *
 * The service plane records queue-wait and service times from many
 * worker threads and reads p50/p99 both for operators (`stats`
 * responses, the stress bench) and for *control* — the load monitor
 * sheds on these percentiles — so unlike the counter registry this
 * class is always compiled in, never gated by SATOM_STATS.  Buckets
 * are powers of two, so a reported percentile is the upper edge of
 * its bucket: conservative (never under-reports) and within 2x of
 * the true value, which is exactly the precision an overload
 * threshold needs.  record() is two relaxed atomic RMWs.
 */
class LatencyHistogram
{
  public:
    void
    record(std::uint64_t us)
    {
        std::size_t b = 0;
        while (b + 1 < kBuckets && us >= (std::uint64_t{1} << (b + 1)))
            ++b;
        buckets_[b].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /**
     * Upper bucket edge at quantile @p p in [0,1]; 0 when empty.
     * Reads are racy against concurrent record()s by design — the
     * consumers are monitoring loops, not invariants.
     */
    std::uint64_t
    percentileUs(double p) const
    {
        const std::uint64_t n = count();
        if (n == 0)
            return 0;
        // NaN compares false against everything, so the clamps below
        // would pass it through to an integer cast, which is UB.
        // Treat it as the conservative extreme instead.
        if (std::isnan(p))
            p = 1;
        if (p < 0)
            p = 0;
        if (p > 1)
            p = 1;
        const auto target = static_cast<std::uint64_t>(p * (n - 1)) + 1;
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < kBuckets; ++b) {
            cum += buckets_[b].load(std::memory_order_relaxed);
            if (cum >= target)
                return upperEdgeUs(b);
        }
        return upperEdgeUs(kBuckets - 1);
    }

    /** `{"count": N, "p50_us": ..., "p99_us": ...}` */
    std::string json() const;

    /** Forget every sample (load-monitor window rollover). */
    void
    reset()
    {
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
    }

  private:
    static constexpr std::size_t kBuckets = 40; // ~2^40 us ≈ 12 days

    static std::uint64_t
    upperEdgeUs(std::size_t b)
    {
        return b == 0 ? 1 : (std::uint64_t{1} << (b + 1)) - 1;
    }

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
};

/**
 * Collector of Chrome trace events ("traceEvents" JSON).  Thread-safe
 * (one mutex per log; events are coarse so contention is nil).  The
 * timebase is the log's construction instant, so timestamps start
 * near zero.
 */
class TraceLog
{
  public:
    TraceLog();

    /** Microseconds since the log was created. */
    std::int64_t nowUs() const;

    /**
     * Record a complete ("ph":"X") event covering
     * [@p tsUs, @p tsUs + @p durUs].  @p argsJson, when nonempty, must
     * be a JSON object literal and lands in the event's "args".
     */
    void complete(const std::string &name, const std::string &cat,
                  std::int64_t tsUs, std::int64_t durUs, int tid = 0,
                  const std::string &argsJson = "");

    /** Number of events recorded so far. */
    std::size_t size() const;

    /** Render the whole log as a Chrome trace-event JSON document. */
    std::string render() const;

    /** Write render() to @p path; false on I/O failure. */
    bool writeTo(const std::string &path) const;

  private:
#if SATOM_STATS_ENABLED
    struct Event
    {
        std::string name;
        std::string cat;
        std::int64_t tsUs;
        std::int64_t durUs;
        int tid;
        std::string argsJson;
    };

    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex m_;
    std::vector<Event> events_;
#endif
};

/**
 * RAII phase timer: records one complete event on @p log (nullptr =
 * inert, no clock reads) covering the scope's lifetime.
 */
class PhaseTimer
{
  public:
    PhaseTimer(TraceLog *log, std::string name,
               std::string cat = "phase", int tid = 0);
    ~PhaseTimer();

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
#if SATOM_STATS_ENABLED
    TraceLog *log_;
    std::string name_;
    std::string cat_;
    int tid_;
    std::int64_t startUs_ = 0;
#endif
};

} // namespace satom::stats
