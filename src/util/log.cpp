#include "util/log.hpp"

#include <mutex>

namespace satom::log
{

namespace
{

std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
line(const std::string &s)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::string buf = s;
    buf += '\n';
    std::fwrite(buf.data(), 1, buf.size(), stderr);
    std::fflush(stderr);
}

void
block(std::FILE *f, const std::string &blockText)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(blockText.data(), 1, blockText.size(), f);
    std::fflush(f);
}

} // namespace satom::log
