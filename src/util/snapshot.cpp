#include "util/snapshot.hpp"

#include <array>
#include <cstring>

namespace satom::snapshot
{

const char *
toString(Error e)
{
    switch (e) {
    case Error::None:
        return "none";
    case Error::Io:
        return "io";
    case Error::BadMagic:
        return "bad-magic";
    case Error::BadVersion:
        return "bad-version";
    case Error::CfgMismatch:
        return "cfg-mismatch";
    case Error::Torn:
        return "torn";
    case Error::BadCrc:
        return "bad-crc";
    case Error::BadRecord:
        return "bad-record";
    }
    return "unknown";
}

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table =
        makeCrcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

RecordWriter::RecordWriter(std::string_view fingerprint)
{
    buf_.append(magic, sizeof(magic));
    ByteWriter w;
    w.u32(formatVersion);
    w.str(fingerprint);
    const std::string header = w.take();
    buf_ += header;
    ByteWriter crcw;
    crcw.u32(crc32(header.data(), header.size()));
    buf_ += crcw.take();
}

void
RecordWriter::record(std::uint32_t type, std::string_view payload)
{
    ByteWriter w;
    w.u32(type);
    w.u64(payload.size());
    buf_ += w.take();
    buf_.append(payload.data(), payload.size());
    ByteWriter crcw;
    crcw.u32(crc32(payload.data(), payload.size()));
    buf_ += crcw.take();
}

std::string
RecordWriter::finish()
{
    if (!finished_) {
        record(recordEnd, {});
        finished_ = true;
    }
    return std::move(buf_);
}

Status
RecordReader::open(std::string_view bytes,
                   std::string_view expectFingerprint)
{
    data_ = bytes;
    pos_ = 0;
    sawEnd_ = false;
    status_ = Status{};

    if (data_.size() < sizeof(magic) ||
        std::memcmp(data_.data(), magic, sizeof(magic)) != 0) {
        status_ = Status::fail(Error::BadMagic,
                               "not a SATOMSNP snapshot file");
        return status_;
    }
    pos_ = sizeof(magic);

    // The header (version + fingerprint) is length-delimited, so we
    // parse it with a ByteReader over the remainder and then verify
    // its own CRC before trusting either field.
    ByteReader r(data_.substr(pos_));
    const std::uint32_t version = r.u32();
    const std::string fp = r.str();
    if (r.failed()) {
        status_ = Status::fail(Error::Torn,
                               "truncated snapshot header");
        return status_;
    }
    const std::size_t headerLen =
        4 + 4 + fp.size(); // u32 version + length-prefixed string
    const std::uint32_t wantCrc = r.u32();
    if (r.failed()) {
        status_ = Status::fail(Error::Torn,
                               "truncated snapshot header");
        return status_;
    }
    const std::uint32_t gotCrc =
        crc32(data_.data() + pos_, headerLen);
    if (gotCrc != wantCrc) {
        status_ = Status::fail(Error::BadCrc,
                               "snapshot header checksum mismatch");
        return status_;
    }
    if (version < minFormatVersion || version > formatVersion) {
        status_ = Status::fail(
            Error::BadVersion,
            "snapshot format version " + std::to_string(version) +
                ", this build reads " +
                std::to_string(minFormatVersion) + ".." +
                std::to_string(formatVersion));
        return status_;
    }
    if (!expectFingerprint.empty() && fp != expectFingerprint) {
        status_ = Status::fail(
            Error::CfgMismatch,
            "snapshot was taken under a different configuration: "
            "snapshot=[" +
                fp + "] current=[" + std::string(expectFingerprint) +
                "]");
        return status_;
    }
    fingerprint_ = fp;
    pos_ += headerLen + 4; // header + its CRC
    return status_;
}

bool
RecordReader::next(std::uint32_t &type, std::string_view &payload)
{
    if (!status_.ok() || sawEnd_)
        return false;
    if (pos_ >= data_.size()) {
        status_ = Status::fail(
            Error::Torn, "snapshot ends without an end record");
        return false;
    }
    ByteReader r(data_.substr(pos_));
    const std::uint32_t t = r.u32();
    const std::uint64_t len = r.u64();
    if (r.failed() || r.remaining() < len + 4) {
        status_ = Status::fail(
            Error::Torn,
            "record frame truncated at byte " + std::to_string(pos_));
        return false;
    }
    const std::size_t payloadOff = pos_ + 4 + 8;
    const std::string_view body = data_.substr(
        payloadOff, static_cast<std::size_t>(len));
    ByteReader crcr(
        data_.substr(payloadOff + static_cast<std::size_t>(len), 4));
    const std::uint32_t wantCrc = crcr.u32();
    if (crc32(body.data(), body.size()) != wantCrc) {
        status_ = Status::fail(
            Error::BadCrc, "record type " + std::to_string(t) +
                               " at byte " + std::to_string(pos_) +
                               " failed its checksum");
        return false;
    }
    pos_ = payloadOff + static_cast<std::size_t>(len) + 4;
    if (t == recordEnd) {
        sawEnd_ = true;
        return false; // clean end: status_.ok() stays true
    }
    type = t;
    payload = body;
    return true;
}

} // namespace satom::snapshot
