#include "util/run_control.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>

#include <unistd.h>

namespace satom
{

const char *
toString(Truncation t)
{
    switch (t) {
      case Truncation::None: return "none";
      case Truncation::StateCap: return "state-cap";
      case Truncation::Deadline: return "deadline";
      case Truncation::MemoryCap: return "memory-cap";
      case Truncation::Cancelled: return "cancelled";
      case Truncation::WorkerFault: return "worker-fault";
    }
    return "?";
}

bool
truncationFromString(const std::string &name, Truncation &out)
{
    for (Truncation t :
         {Truncation::None, Truncation::StateCap, Truncation::Deadline,
          Truncation::MemoryCap, Truncation::Cancelled,
          Truncation::WorkerFault}) {
        if (name == toString(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

RunBudget
RunBudget::deadlineInMs(long ms)
{
    RunBudget b;
    b.deadline = Clock::now() + std::chrono::milliseconds(ms);
    return b;
}

std::size_t
approxRssBytes()
{
    // /proc/self/statm: size resident shared ... in pages.  Cheap
    // enough to read on a strided poll; absent (non-Linux) => 0 and
    // the memory ceiling simply never trips.
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long size = 0, resident = 0;
    const int got = std::fscanf(f, "%lu %lu", &size, &resident);
    std::fclose(f);
    if (got != 2)
        return 0;
    static const long page = ::sysconf(_SC_PAGESIZE);
    return static_cast<std::size_t>(resident) *
           static_cast<std::size_t>(page > 0 ? page : 4096);
}

Truncation
BudgetGate::check()
{
    // Order matters for determinism of the *reported* reason when
    // several limits have passed: an explicit cancellation wins, then
    // the deadline, then the memory ceiling.
    if (budget_.cancel.cancelRequested())
        return tripped_ = Truncation::Cancelled;
    if (budget_.hasDeadline() &&
        RunBudget::Clock::now() >= budget_.deadline)
        return tripped_ = Truncation::Deadline;
    if (budget_.maxRssBytes != 0 &&
        approxRssBytes() > budget_.maxRssBytes)
        return tripped_ = Truncation::MemoryCap;
    return Truncation::None;
}

namespace fault
{

namespace
{

std::atomic<int> g_site{static_cast<int>(Site::None)};
std::atomic<long> g_param{0};
std::atomic<long> g_hits{0};
std::once_flag g_envOnce;

void
readEnvOnce()
{
    std::call_once(g_envOnce, [] {
        if (const char *spec = std::getenv("SATOM_FAULT"))
            armFromSpec(spec);
    });
}

} // namespace

void
arm(Site site, long n)
{
    g_hits.store(0, std::memory_order_relaxed);
    g_param.store(n, std::memory_order_relaxed);
    g_site.store(static_cast<int>(site), std::memory_order_release);
}

bool
armFromSpec(const std::string &spec)
{
    std::string name = spec;
    long n = 1;
    const auto colon = spec.find(':');
    if (colon != std::string::npos) {
        name = spec.substr(0, colon);
        try {
            n = std::stol(spec.substr(colon + 1));
        } catch (const std::exception &) {
            return false;
        }
    }
    if (name == "worker-throw")
        arm(Site::WorkerThrow, n);
    else if (name == "alloc-fail")
        arm(Site::AllocFail, n);
    else if (name == "stall")
        arm(Site::Stall, n);
    else if (name == "kill-after-journal")
        arm(Site::KillAfterJournal, n);
    else if (name == "kill-after-checkpoint")
        arm(Site::KillAfterCheckpoint, n);
    else if (name == "torn-snapshot")
        arm(Site::TornSnapshot, n);
    else if (name == "spill-io-fail")
        arm(Site::SpillIoFail, n);
    else if (name == "torn-cache")
        arm(Site::TornCache, n);
    else if (name == "flip-cache")
        arm(Site::FlipCache, n);
    else if (name == "stale-cache")
        arm(Site::StaleCache, n);
    else if (name == "accept-fail")
        arm(Site::AcceptFail, n);
    else if (name == "job-drop")
        arm(Site::JobDrop, n);
    else if (name == "slow-client")
        arm(Site::SlowClient, n);
    else if (name == "index-io-fail")
        arm(Site::IndexIoFail, n);
    else if (name == "kill-after-evict")
        arm(Site::KillAfterEvict, n);
    else
        return false;
    return true;
}

void
disarm()
{
    g_site.store(static_cast<int>(Site::None),
                 std::memory_order_release);
    g_param.store(0, std::memory_order_relaxed);
    g_hits.store(0, std::memory_order_relaxed);
}

bool
armed()
{
    readEnvOnce();
    return g_site.load(std::memory_order_acquire) !=
           static_cast<int>(Site::None);
}

void
maybeInjectWorker()
{
    if (!armed())
        return;
    const Site site =
        static_cast<Site>(g_site.load(std::memory_order_acquire));
    switch (site) {
      case Site::WorkerThrow:
        if (g_hits.fetch_add(1, std::memory_order_relaxed) + 1 ==
            g_param.load(std::memory_order_relaxed))
            throw std::runtime_error(
                "SATOM_FAULT: injected worker fault");
        break;
      case Site::AllocFail:
        if (g_hits.fetch_add(1, std::memory_order_relaxed) + 1 ==
            g_param.load(std::memory_order_relaxed))
            throw std::bad_alloc();
        break;
      case Site::Stall:
        std::this_thread::sleep_for(std::chrono::milliseconds(
            g_param.load(std::memory_order_relaxed)));
        break;
      default:
        break;
    }
}

namespace
{

/** Shared countdown logic for the site-specific "due" predicates. */
bool
siteHitDue(Site wanted)
{
    if (!armed())
        return false;
    if (static_cast<Site>(g_site.load(std::memory_order_acquire)) !=
        wanted)
        return false;
    return g_hits.fetch_add(1, std::memory_order_relaxed) + 1 >=
           g_param.load(std::memory_order_relaxed);
}

/**
 * Exact-hit variant for sites the process survives: only the N-th hit
 * fires, so an injected accept failure or dropped job is a one-shot
 * event the service must recover from, not a permanent outage.
 */
bool
siteHitExact(Site wanted)
{
    if (!armed())
        return false;
    if (static_cast<Site>(g_site.load(std::memory_order_acquire)) !=
        wanted)
        return false;
    return g_hits.fetch_add(1, std::memory_order_relaxed) + 1 ==
           g_param.load(std::memory_order_relaxed);
}

} // namespace

bool
journalKillDue()
{
    return siteHitDue(Site::KillAfterJournal);
}

bool
checkpointKillDue()
{
    return siteHitDue(Site::KillAfterCheckpoint);
}

bool
snapshotTornDue()
{
    return siteHitDue(Site::TornSnapshot);
}

bool
spillIoFailDue()
{
    return siteHitDue(Site::SpillIoFail);
}

bool
cacheTornDue()
{
    return siteHitDue(Site::TornCache);
}

bool
cacheFlipDue()
{
    return siteHitDue(Site::FlipCache);
}

bool
cacheStaleDue()
{
    return siteHitDue(Site::StaleCache);
}

bool
acceptFailDue()
{
    return siteHitExact(Site::AcceptFail);
}

bool
jobDropDue()
{
    return siteHitExact(Site::JobDrop);
}

bool
slowClientDue()
{
    return siteHitExact(Site::SlowClient);
}

bool
indexIoFailDue()
{
    return siteHitDue(Site::IndexIoFail);
}

bool
evictKillDue()
{
    return siteHitDue(Site::KillAfterEvict);
}

} // namespace fault

} // namespace satom
