#include "util/atomic_file.hpp"

#include <atomic>
#include <cstdio>

#include <unistd.h>

namespace satom
{

namespace
{

std::atomic<bool> g_unsafeAtomicWrites{false};

/** Unique temp name: pid guards cross-process races, the counter
 *  guards concurrent writers inside one process. */
std::string
atomicTmpName(const std::string &path)
{
    static std::atomic<std::uint64_t> seq{0};
    return path + ".satomtmp." + std::to_string(::getpid()) + "." +
           std::to_string(seq.fetch_add(1));
}

} // namespace

void
setUnsafeAtomicWrites(bool on)
{
    g_unsafeAtomicWrites.store(on);
}

bool
unsafeAtomicWrites()
{
    return g_unsafeAtomicWrites.load();
}

bool
isAtomicTmpPath(const std::string &path)
{
    return path.find(".satomtmp.") != std::string::npos;
}

bool
writeFileAtomic(io::IoEnv &env, const std::string &path,
                const std::string &content)
{
    const std::string tmp = atomicTmpName(path);
    auto f = env.openWrite(tmp, /*truncate=*/true);
    if (!f)
        return false;
    bool ok = f->write(content);
    if (ok && !unsafeAtomicWrites())
        ok = f->sync();
    ok = f->close() && ok;
    if (!ok)
    {
        env.remove(tmp);
        return false;
    }
    if (!env.rename(tmp, path))
    {
        env.remove(tmp);
        return false;
    }
    if (!unsafeAtomicWrites())
        env.syncDir(io::dirnameOf(path));
    return true;
}

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    return writeFileAtomic(io::realIoEnv(), path, content);
}

bool
readFileBytes(io::IoEnv &env, const std::string &path,
              std::string &out)
{
    return env.readFile(path, out);
}

bool
readFileBytes(const std::string &path, std::string &out)
{
    return readFileBytes(io::realIoEnv(), path, out);
}

} // namespace satom
