#include "util/atomic_file.hpp"

#include <cstdio>
#include <sstream>

namespace satom
{

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::trunc | std::ios::binary);
        if (!f || !f.write(content.data(),
                           static_cast<std::streamsize>(
                               content.size()))) {
            std::remove(tmp.c_str());
            return false;
        }
        f.flush();
        if (!f) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFileBytes(const std::string &path, std::string &out)
{
    out.clear();
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::ostringstream buf;
    buf << f.rdbuf();
    if (f.bad())
        return false;
    out = buf.str();
    return true;
}

} // namespace satom
