/**
 * @file
 * The versioned, CRC-checked binary snapshot format behind engine
 * checkpoints and frontier spill segments.
 *
 * Layout of a snapshot file:
 *
 *   magic(8) = "SATOMSNP"
 *   u32 formatVersion
 *   u32 fingerprintLen | fingerprint bytes   (the #cfg string)
 *   u32 crc32(formatVersion || fingerprint)
 *   record*                                   (framed, see below)
 *   end record (type = recordEnd, empty payload)
 *
 * Each record is framed as
 *
 *   u32 type | u64 payloadLen | payload bytes | u32 crc32(payload)
 *
 * so a reader can (a) skip record types it does not know, (b) detect
 * a bit flip anywhere in a payload via the CRC, and (c) detect a torn
 * tail — the damage a SIGKILL or disk-full leaves — as either a frame
 * whose declared length runs past EOF or a file that ends before the
 * explicit end record.  Checkpoints are written tmp+rename and should
 * never tear; spill segments and crash debris can, and the reader
 * must degrade to a structured error, never UB or an exception.
 *
 * The fingerprint plays the same role as the fuzz journal's #cfg
 * header: a snapshot resumed under a different program / model /
 * semantic option set would silently corrupt the bit-equivalence
 * contract, so mismatches are refused with both strings in the error.
 *
 * ByteWriter/ByteReader are the primitive codecs (little-endian fixed
 * width).  ByteReader is fail-sticky and bounds-checked: any read past
 * the end flips the fail flag and returns zeros, so record decoders
 * can decode unconditionally and check failed() once at the end.
 */

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace satom::snapshot
{

/** Bytes 0..7 of every snapshot/spill file. */
inline constexpr char magic[8] = {'S', 'A', 'T', 'O',
                                  'M', 'S', 'N', 'P'};

/** Format version written by this build.  v2: EnumStats gained the
 *  closure-frontier fields and the registry the kernel/wave rows.
 *  v3: engine snapshots may carry a seen-pages record (the cold tier
 *  of the paged dedup index, §15). */
inline constexpr std::uint32_t formatVersion = 3;

/** Oldest version this build still reads.  v3 only added an optional
 *  record type (seen-pages) and readers skip record types they do not
 *  know, so v2 checkpoints and spill segments stay loadable. */
inline constexpr std::uint32_t minFormatVersion = 2;

/** The explicit end-of-stream record type. */
inline constexpr std::uint32_t recordEnd = 0xE0Fu;

/** Why a snapshot could not be read. */
enum class Error
{
    None,        ///< loaded cleanly
    Io,          ///< the file cannot be opened or read
    BadMagic,    ///< not a snapshot file at all
    BadVersion,  ///< written by a different format version
    CfgMismatch, ///< fingerprint differs from the current run's
    Torn,        ///< truncated mid-record or missing the end record
    BadCrc,      ///< a payload failed its checksum (bit flip)
    BadRecord,   ///< a payload decoded to inconsistent state
};

/** Stable name: "none", "io", "bad-magic", ... */
const char *toString(Error e);

/** Structured outcome of a snapshot read/write. */
struct Status
{
    Error error = Error::None;
    std::string detail; ///< human-readable specifics

    bool ok() const { return error == Error::None; }

    static Status
    fail(Error e, std::string d)
    {
        return Status{e, std::move(d)};
    }
};

/** CRC-32 (IEEE 802.3 polynomial, the zlib convention). */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

/** Little-endian serializer into a growable byte buffer. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    str(std::string_view s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.append(s.data(), s.size());
    }

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked little-endian reader over a byte span.  All getters
 * return zero/empty after a bounds violation and set failed(); they
 * never read out of bounds and never throw.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data) : data_(data) {}

    std::uint8_t
    u8()
    {
        if (pos_ >= data_.size()) {
            failed_ = true;
            return 0;
        }
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool boolean() { return u8() != 0; }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (failed_ || data_.size() - pos_ < n) {
            failed_ = true;
            return {};
        }
        std::string s(data_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    bool failed() const { return failed_; }
    bool atEnd() const { return pos_ >= data_.size(); }
    std::size_t remaining() const { return data_.size() - pos_; }

  private:
    std::string_view data_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/**
 * Assembles one snapshot byte stream: header, framed records, end
 * marker.  The caller persists bytes() (atomically, for checkpoints).
 */
class RecordWriter
{
  public:
    explicit RecordWriter(std::string_view fingerprint);

    /** Append one framed record of @p type. */
    void record(std::uint32_t type, std::string_view payload);

    /** Append the end record and return the full stream. */
    std::string finish();

  private:
    std::string buf_;
    bool finished_ = false;
};

/**
 * Walks the framed records of a snapshot byte stream.  open()
 * validates magic/version/header-CRC and (when @p expectFingerprint
 * is nonempty) the configuration fingerprint.  next() yields records
 * until the end marker; a stream that stops without one is Torn.
 */
class RecordReader
{
  public:
    /** Validate the header; Status tells why on failure. */
    Status open(std::string_view bytes,
                std::string_view expectFingerprint);

    /**
     * Fetch the next record.  True with type/payload set on success;
     * false at the end marker or on malformed input — check status()
     * to distinguish (ok() == clean end).
     */
    bool next(std::uint32_t &type, std::string_view &payload);

    const Status &status() const { return status_; }

    /** The fingerprint stored in the stream's header. */
    const std::string &fingerprint() const { return fingerprint_; }

  private:
    std::string_view data_;
    std::size_t pos_ = 0;
    std::string fingerprint_;
    Status status_;
    bool sawEnd_ = false;
};

} // namespace satom::snapshot
