/**
 * @file
 * FNV-1a hashing helpers used for behavior deduplication.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/kernels.hpp"

namespace satom
{

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    /** Mix a single byte. */
    void
    byte(std::uint8_t b)
    {
        state_ ^= b;
        state_ *= prime;
    }

    /** Mix an integral value, little-endian byte order. */
    template <typename T>
    void
    value(T v)
    {
        auto u = static_cast<std::uint64_t>(v);
        for (int i = 0; i < 8; ++i) {
            byte(static_cast<std::uint8_t>(u & 0xff));
            u >>= 8;
        }
    }

    /** Mix a string. */
    void
    str(std::string_view s)
    {
        for (char c : s)
            byte(static_cast<std::uint8_t>(c));
        byte(0xff); // terminator so "ab","c" != "a","bc"
    }

    /** Current digest. */
    std::uint64_t digest() const { return state_; }

  private:
    static constexpr std::uint64_t offset = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t prime = 0x100000001b3ull;

    std::uint64_t state_ = offset;
};

/** One-shot hash of a string. */
inline std::uint64_t
hashString(std::string_view s)
{
    Fnv1a h;
    h.str(s);
    return h.digest();
}

/**
 * Fast streaming 64-bit hasher over word-sized values.
 *
 * FNV-1a costs eight multiplies per 64-bit value (one per byte); the
 * enumerator hashes every forked behavior, which made byte-wise mixing
 * the hottest function of the whole search.  This hasher absorbs a
 * word with two multiplies (a murmur-style finalizer on the input,
 * then a combine), which is plenty of diffusion for duplicate pruning
 * over key populations in the millions.
 */
class StreamHash64
{
  public:
    /** Absorb one 64-bit value. */
    void
    value(std::uint64_t v)
    {
        v *= 0xff51afd7ed558ccdull;
        v ^= v >> 33;
        state_ = (state_ ^ v) * 0xc4ceb9fe1a85ec53ull;
        state_ ^= state_ >> 29;
    }

    /** Absorb a signed or narrower integral value. */
    template <typename T>
    void
    signedValue(T v)
    {
        value(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(v)));
    }

    /**
     * Absorb @p n words, equal to calling value() on each in order.
     *
     * The per-word premix (multiply + xor-shift) is independent across
     * inputs, so it runs through the dispatched kernel in blocks; only
     * the order-sensitive combine stays sequential.  Digests are
     * bit-identical to the word-at-a-time path on every tier.
     */
    void
    words(const std::uint64_t *w, std::size_t n)
    {
        std::uint64_t mixed[64];
        while (n > 0) {
            const std::size_t blk = n < 64 ? n : 64;
            kern::premix(mixed, w, blk);
            for (std::size_t i = 0; i < blk; ++i) {
                state_ = (state_ ^ mixed[i]) * 0xc4ceb9fe1a85ec53ull;
                state_ ^= state_ >> 29;
            }
            w += blk;
            n -= blk;
        }
    }

    /** Current digest. */
    std::uint64_t digest() const { return state_; }

  private:
    std::uint64_t state_ = 0x9e3779b97f4a7c15ull;
};

} // namespace satom
