/**
 * @file
 * Canonical encodings of execution graphs.
 *
 * The enumeration procedure resolves eligible Loads in every order and so
 * revisits identical states; Section 4.1 prunes duplicates by comparing
 * Load–Store graphs (all non-memory nodes erased, their orderings
 * spliced).  Because our closure is transitive, restricting the closure
 * to memory nodes *is* the spliced graph, so the canonical form is a
 * deterministic byte string over memory nodes, their state, the source
 * map and the restricted closure.
 *
 * The string form is kept for tests and debugging; the enumerator dedups
 * on the streaming 64-bit digest (hashGraphInto), which mixes the same
 * information without materializing the string.
 */

#pragma once

#include <string>

#include "core/graph.hpp"
#include "util/hash.hpp"

namespace satom
{

/**
 * Deterministic string encoding of @p g.
 *
 * @param g          graph to encode
 * @param memoryOnly true: paper's Load–Store graph (dedup key);
 *                   false: every node (exact state comparisons in tests)
 */
std::string encodeGraph(const ExecutionGraph &g, bool memoryOnly);

/**
 * Mix the canonical content of @p g into @p h without building the
 * string.  Two graphs with equal encodeGraph strings mix identically.
 */
void hashGraphInto(StreamHash64 &h, const ExecutionGraph &g,
                   bool memoryOnly);

/** One-shot 64-bit digest of the canonical content of @p g. */
std::uint64_t hashGraph(const ExecutionGraph &g, bool memoryOnly);

} // namespace satom
