/**
 * @file
 * Canonical encodings of execution graphs.
 *
 * The enumeration procedure resolves eligible Loads in every order and so
 * revisits identical states; Section 4.1 prunes duplicates by comparing
 * Load–Store graphs (all non-memory nodes erased, their orderings
 * spliced).  Because our closure is transitive, restricting the closure
 * to memory nodes *is* the spliced graph, so the canonical form is a
 * deterministic byte string over memory nodes, their state, the source
 * map and the restricted closure.
 */

#pragma once

#include <string>

#include "core/graph.hpp"

namespace satom
{

/**
 * Deterministic string encoding of @p g.
 *
 * @param g          graph to encode
 * @param memoryOnly true: paper's Load–Store graph (dedup key);
 *                   false: every node (exact state comparisons in tests)
 */
std::string encodeGraph(const ExecutionGraph &g, bool memoryOnly);

/** FNV-1a digest of encodeGraph. */
std::uint64_t hashGraph(const ExecutionGraph &g, bool memoryOnly);

} // namespace satom
