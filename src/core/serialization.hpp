/**
 * @file
 * Serializations of executions (Section 3.1 of the paper).
 *
 * A serialization is a total order of all operations that (1) respects
 * `@` (hence local order and observation), and (2) has every Load read
 * the most recent same-address Store — no intervening overwrite.  These
 * routines exist chiefly for validation: the brute-force baseline checks
 * that enumerated executions are serializable and that `@` equals the
 * intersection of all serializations (the paper's minimality claim).
 *
 * Complexity is exponential in graph size; callers cap the search.
 */

#pragma once

#include <optional>
#include <vector>

#include "core/graph.hpp"

namespace satom
{

/** Tuning for the serialization search. */
struct SerializationOptions
{
    /** Abort enumeration after this many serializations (safety cap). */
    long cap = 1000000;

    /**
     * TSO mode: Loads whose observation was a bypass read their value
     * from the local Store pipeline, so they are exempt from the
     * "most recent Store" rule.  With this false (the default), graphs
     * containing genuine TSO bypasses are typically not serializable —
     * exactly the paper's "violates memory atomicity" diagnosis.
     */
    bool exemptBypassedLoads = false;
};

/** One witness serialization, or nullopt if none exists. */
std::optional<std::vector<NodeId>>
findSerialization(const ExecutionGraph &g,
                  const SerializationOptions &opts = {});

/** True iff at least one valid serialization exists. */
bool isSerializable(const ExecutionGraph &g,
                    const SerializationOptions &opts = {});

/**
 * All serializations (up to opts.cap; nullopt if the cap was hit).
 */
std::optional<std::vector<std::vector<NodeId>>>
enumerateSerializations(const ExecutionGraph &g,
                        const SerializationOptions &opts = {});

/**
 * The intersection order: before[v] contains u iff u precedes v in
 * every valid serialization.  nullopt if there is no serialization or
 * the cap was hit.  Comparing this against the graph's closure checks
 * the minimality of `@`.
 */
std::optional<std::vector<Bitset>>
serializationIntersection(const ExecutionGraph &g,
                          const SerializationOptions &opts = {});

} // namespace satom
