#include "core/atomicity.hpp"

namespace satom
{

namespace
{

/** Resolved Loads with a known source and address. */
std::vector<NodeId>
resolvedLoads(const ExecutionGraph &g)
{
    std::vector<NodeId> out;
    for (const auto &n : g.nodes())
        if (n.isLoad() && n.source != invalidNode)
            out.push_back(n.id);
    return out;
}

/**
 * Apply rules a and b for one resolved Load. Returns -1 on violation,
 * otherwise the number of edges added.
 */
int
applyRulesAB(ExecutionGraph &g, NodeId lid)
{
    const Node &load = g.node(lid);
    const NodeId src = load.source;
    int added = 0;
    for (NodeId sid : g.storesTo(load.addr)) {
        // Skip the source and, for Rmw observers, the node itself
        // (its Store half is after its own observation by definition).
        if (sid == src || sid == lid)
            continue;
        // Rule a: a predecessor Store of L must precede source(L).
        if (g.ordered(sid, lid) && !g.ordered(sid, src)) {
            if (!g.addEdge(sid, src, EdgeKind::Atomicity))
                return -1;
            ++added;
        }
        // Rule b: a successor Store of source(L) must follow L.
        if (g.ordered(src, sid) && !g.ordered(lid, sid)) {
            if (!g.addEdge(lid, sid, EdgeKind::Atomicity))
                return -1;
            ++added;
        }
    }
    return added;
}

/**
 * Apply rule c for one pair of same-address Loads with distinct
 * sources. Returns -1 on violation, otherwise edges added.
 */
int
applyRuleC(ExecutionGraph &g, NodeId l1, NodeId l2)
{
    const NodeId s1 = g.node(l1).source;
    const NodeId s2 = g.node(l2).source;

    Bitset ancestors = g.preds(l1);
    ancestors &= g.preds(l2);
    if (ancestors.none())
        return 0;
    Bitset successors = g.succs(s1);
    successors &= g.succs(s2);
    if (successors.none())
        return 0;

    int added = 0;
    bool violated = false;
    ancestors.forEach([&](std::size_t a) {
        if (violated)
            return;
        successors.forEach([&](std::size_t b) {
            if (violated)
                return;
            const NodeId an = static_cast<NodeId>(a);
            const NodeId bn = static_cast<NodeId>(b);
            if (!g.ordered(an, bn)) {
                if (!g.addEdge(an, bn, EdgeKind::Atomicity))
                    violated = true;
                else
                    ++added;
            }
        });
    });
    return violated ? -1 : added;
}

} // namespace

ClosureResult
closeStoreAtomicity(ExecutionGraph &g, ClosureStats *stats, bool ruleC)
{
    bool changed = true;
    while (changed) {
        changed = false;
        if (stats)
            ++stats->iterations;

        const auto loads = resolvedLoads(g);
        for (NodeId lid : loads) {
            const int added = applyRulesAB(g, lid);
            if (added < 0)
                return ClosureResult::Violation;
            if (added > 0) {
                changed = true;
                if (stats)
                    stats->edgesAdded += added;
            }
        }
        if (!ruleC)
            continue;
        for (std::size_t i = 0; i < loads.size(); ++i) {
            for (std::size_t j = i + 1; j < loads.size(); ++j) {
                const Node &a = g.node(loads[i]);
                const Node &b = g.node(loads[j]);
                if (a.addr != b.addr || a.source == b.source)
                    continue;
                const int added = applyRuleC(g, loads[i], loads[j]);
                if (added < 0)
                    return ClosureResult::Violation;
                if (added > 0) {
                    changed = true;
                    if (stats)
                        stats->edgesAdded += added;
                }
            }
        }
    }
    return hasOverwrittenObservation(g) ? ClosureResult::Violation
                                        : ClosureResult::Ok;
}

bool
hasOverwrittenObservation(const ExecutionGraph &g)
{
    for (const auto &n : g.nodes()) {
        if (!n.isLoad() || n.source == invalidNode)
            continue;
        for (NodeId sid : g.storesTo(n.addr)) {
            if (sid == n.source || sid == n.id)
                continue;
            if (g.ordered(n.source, sid) && g.ordered(sid, n.id))
                return true;
        }
    }
    return false;
}

bool
satisfiesStoreAtomicity(const ExecutionGraph &g)
{
    if (hasOverwrittenObservation(g))
        return false;

    const auto loads = resolvedLoads(g);
    for (NodeId lid : loads) {
        const Node &load = g.node(lid);
        const NodeId src = load.source;
        for (NodeId sid : g.storesTo(load.addr)) {
            if (sid == src || sid == lid)
                continue;
            if (g.ordered(sid, lid) && !g.ordered(sid, src))
                return false; // rule a unmet
            if (g.ordered(src, sid) && !g.ordered(lid, sid))
                return false; // rule b unmet
        }
    }
    for (std::size_t i = 0; i < loads.size(); ++i) {
        for (std::size_t j = i + 1; j < loads.size(); ++j) {
            const Node &a = g.node(loads[i]);
            const Node &b = g.node(loads[j]);
            if (a.addr != b.addr || a.source == b.source)
                continue;
            Bitset ancestors = g.preds(a.id);
            ancestors &= g.preds(b.id);
            Bitset successors = g.succs(a.source);
            successors &= g.succs(b.source);
            bool unmet = false;
            ancestors.forEach([&](std::size_t an) {
                successors.forEach([&](std::size_t bn) {
                    if (!g.ordered(static_cast<NodeId>(an),
                                   static_cast<NodeId>(bn)))
                        unmet = true;
                });
            });
            if (unmet)
                return false; // rule c unmet
        }
    }
    return true;
}

std::vector<NodeId>
candidateStores(const ExecutionGraph &g, NodeId load)
{
    const Node &ln = g.node(load);
    std::vector<NodeId> out;
    if (!ln.addrKnown)
        return out;

    const auto sameAddr = g.storesTo(ln.addr);
    for (NodeId sid : sameAddr) {
        const Node &sn = g.node(sid);
        if (!sn.valueKnown)
            continue;
        if (g.ordered(load, sid))
            continue; // observing it would close a cycle

        // 1. Everything before S must be resolved.
        bool predsResolved = true;
        g.preds(sid).forEach([&](std::size_t p) {
            if (!g.node(static_cast<NodeId>(p)).resolved())
                predsResolved = false;
        });
        if (!predsResolved)
            continue;

        // 2. S must not certainly be overwritten before L.
        bool overwritten = false;
        for (NodeId oid : sameAddr) {
            if (oid == sid)
                continue;
            if (g.ordered(sid, oid) && g.ordered(oid, load)) {
                overwritten = true;
                break;
            }
        }

        // 3. An atomic read-modify-write immediately overwrites what
        //    it observes, so a Store can source at most one Rmw: rule
        //    b would otherwise order each Rmw before the other.
        if (!overwritten && ln.kind == NodeKind::Rmw) {
            for (const Node &other : g.nodes()) {
                if (other.kind == NodeKind::Rmw && other.id != load &&
                    other.source == sid) {
                    overwritten = true;
                    break;
                }
            }
        }
        if (!overwritten)
            out.push_back(sid);
    }
    return out;
}

bool
predecessorLoadsResolved(const ExecutionGraph &g, NodeId id)
{
    bool ok = true;
    g.preds(id).forEach([&](std::size_t p) {
        const Node &n = g.node(static_cast<NodeId>(p));
        if (n.isLoad() && n.source == invalidNode)
            ok = false;
    });
    return ok;
}

} // namespace satom
