#include "core/atomicity.hpp"

#include <algorithm>
#include <utility>

#include "util/kernels.hpp"

namespace satom
{

namespace
{

/** Resolved Loads with a known source and address. */
std::vector<NodeId>
resolvedLoads(const ExecutionGraph &g)
{
    std::vector<NodeId> out;
    for (const auto &n : g.nodes())
        if (n.isLoad() && n.source != invalidNode)
            out.push_back(n.id);
    return out;
}

/**
 * Apply rules a and b for one resolved Load. Returns -1 on violation,
 * otherwise the number of edges added.
 */
int
applyRulesAB(ExecutionGraph &g, NodeId lid)
{
    const Node &load = g.node(lid);
    const NodeId src = load.source;
    int added = 0;
    for (NodeId sid : g.storesTo(load.addr)) {
        // Skip the source and, for Rmw observers, the node itself
        // (its Store half is after its own observation by definition).
        if (sid == src || sid == lid)
            continue;
        // Rule a: a predecessor Store of L must precede source(L).
        if (g.ordered(sid, lid) && !g.ordered(sid, src)) {
            if (!g.addEdge(sid, src, EdgeKind::Atomicity))
                return -1;
            ++added;
        }
        // Rule b: a successor Store of source(L) must follow L.
        if (g.ordered(src, sid) && !g.ordered(lid, sid)) {
            if (!g.addEdge(lid, sid, EdgeKind::Atomicity))
                return -1;
            ++added;
        }
    }
    return added;
}

/**
 * Apply rule c for one pair of same-address Loads with distinct
 * sources. Returns -1 on violation, otherwise edges added.
 */
int
applyRuleC(ExecutionGraph &g, NodeId l1, NodeId l2)
{
    const NodeId s1 = g.node(l1).source;
    const NodeId s2 = g.node(l2).source;

    // Raw-row intersection pre-checks before materializing Bitsets:
    // most pairs have an empty common-ancestor or common-successor
    // set and the early-exit kernel answers that without allocating.
    {
        const auto p1 = g.preds(l1), p2 = g.preds(l2);
        if (!kern::anyAnd(p1.words(), p2.words(),
                          std::min(p1.nwords(), p2.nwords())))
            return 0;
        const auto q1 = g.succs(s1), q2 = g.succs(s2);
        if (!kern::anyAnd(q1.words(), q2.words(),
                          std::min(q1.nwords(), q2.nwords())))
            return 0;
    }

    Bitset ancestors = g.preds(l1);
    ancestors &= g.preds(l2);
    Bitset successors = g.succs(s1);
    successors &= g.succs(s2);

    int added = 0;
    bool violated = false;
    ancestors.forEach([&](std::size_t a) {
        if (violated)
            return;
        successors.forEach([&](std::size_t b) {
            if (violated)
                return;
            const NodeId an = static_cast<NodeId>(a);
            const NodeId bn = static_cast<NodeId>(b);
            if (!g.ordered(an, bn)) {
                if (!g.addEdge(an, bn, EdgeKind::Atomicity))
                    violated = true;
                else
                    ++added;
            }
        });
    });
    return violated ? -1 : added;
}

} // namespace

ClosureResult
closeStoreAtomicity(ExecutionGraph &g, ClosureStats *stats, bool ruleC)
{
    // A rule-(c) close of a graph never closed under rule (c) must
    // sweep everything: rules a/b alone do not discharge the pairwise
    // obligations, so the frontier under-approximates the work.
    const bool fullSweep = ruleC && !g.ruleCClosed();

    if (!fullSweep && g.dirtySince().none()) {
        // Nothing dirtied since a close that covered these rules: the
        // standing Ok verdict holds (violated graphs are discarded by
        // every caller, so no stale Violation can be standing).  This
        // path runs once per retired state on the hot loop, so it
        // must not allocate — count the skipped loads inline.
        if (stats) {
            int n = 0;
            for (const auto &node : g.nodes())
                if (node.isLoad() && node.source != invalidNode)
                    ++n;
            stats->frontierSkipped += n;
        }
        return ClosureResult::Ok;
    }

    // The engine closes after every observation (thousands of closes
    // per millisecond on litmus-sized graphs), so the worklist state
    // is thread-local scratch: cleared per close, allocated once.
    struct Scratch
    {
        std::vector<NodeId> loads;
        std::vector<char> abActive, cActive, examined;
        std::vector<std::pair<std::size_t, std::size_t>> pairs;
        Bitset delta;
    };
    thread_local Scratch sc;

    sc.delta = g.dirtySince();
    g.clearDirty();
    Bitset &delta = sc.delta;

    sc.loads.clear();
    for (const auto &n : g.nodes())
        if (n.isLoad() && n.source != invalidNode)
            sc.loads.push_back(n.id);
    const auto &loads = sc.loads;

    if (stats)
        ++stats->iterations;

    // Worklist flags per resolved Load: abActive re-runs rules a/b,
    // cActive re-runs every rule-(c) pair the load belongs to.
    sc.abActive.assign(loads.size(), 0);
    sc.cActive.assign(loads.size(), 0);
    sc.examined.assign(loads.size(), 0);
    auto &abActive = sc.abActive;
    auto &cActive = sc.cActive;
    auto &examined = sc.examined;

    // Same-address distinct-source pairs (fixed during a close: rules
    // only add edges, never resolve loads or addresses).
    auto &pairs = sc.pairs;
    pairs.clear();
    if (ruleC) {
        for (std::size_t i = 0; i < loads.size(); ++i) {
            for (std::size_t j = i + 1; j < loads.size(); ++j) {
                const Node &a = g.node(loads[i]);
                const Node &b = g.node(loads[j]);
                if (a.addr == b.addr && a.source != b.source)
                    pairs.emplace_back(i, j);
            }
        }
    }

    // A load re-enters the worklist when a node whose closure rows its
    // rules read was dirtied: itself, its source, or a same-address
    // Store.  Rule (c) reads only the load and source rows (the A/B
    // endpoints are members of those rows, not independent inputs).
    const auto activate = [&](const Bitset &d) {
        for (std::size_t i = 0; i < loads.size(); ++i) {
            const Node &ln = g.node(loads[i]);
            const bool self =
                d.test(static_cast<std::size_t>(loads[i])) ||
                d.test(static_cast<std::size_t>(ln.source));
            if (self && ruleC)
                cActive[i] = 1;
            bool ab = self;
            if (!ab) {
                for (NodeId sid : g.storesTo(ln.addr)) {
                    if (d.test(static_cast<std::size_t>(sid))) {
                        ab = true;
                        break;
                    }
                }
            }
            if (ab)
                abActive[i] = 1;
        }
    };

    if (fullSweep) {
        std::fill(abActive.begin(), abActive.end(), 1);
        std::fill(cActive.begin(), cActive.end(), 1);
    } else {
        activate(delta);
    }

    for (;;) {
        for (std::size_t i = 0; i < loads.size(); ++i) {
            if (!abActive[i])
                continue;
            abActive[i] = 0;
            examined[i] = 1;
            if (stats)
                ++stats->frontierLoads;
            const int added = applyRulesAB(g, loads[i]);
            if (added < 0)
                return ClosureResult::Violation;
            if (added > 0 && stats)
                stats->edgesAdded += added;
        }
        if (ruleC) {
            for (const auto &[i, j] : pairs) {
                if (!cActive[i] && !cActive[j])
                    continue;
                examined[i] = 1;
                examined[j] = 1;
                const int added = applyRuleC(g, loads[i], loads[j]);
                if (added < 0)
                    return ClosureResult::Violation;
                if (added > 0 && stats)
                    stats->edgesAdded += added;
            }
            std::fill(cActive.begin(), cActive.end(), 0);
        }
        delta = g.dirtySince();
        g.clearDirty();
        if (delta.none())
            break;
        activate(delta);
    }

    g.markClosed(ruleC);

    if (stats) {
        int ex = 0;
        for (char e : examined)
            ex += e;
        stats->frontierSkipped += static_cast<int>(loads.size()) - ex;
    }

    // Overwritten-observation check, restricted to examined loads: a
    // load outside the frontier kept its own and its same-address
    // Stores' rows, so its verdict from the previous Ok close stands.
    for (std::size_t i = 0; i < loads.size(); ++i) {
        if (!examined[i])
            continue;
        const Node &ln = g.node(loads[i]);
        for (NodeId sid : g.storesTo(ln.addr)) {
            if (sid == ln.source || sid == loads[i])
                continue;
            if (g.ordered(ln.source, sid) &&
                g.ordered(sid, loads[i]))
                return ClosureResult::Violation;
        }
    }
    return ClosureResult::Ok;
}

bool
hasOverwrittenObservation(const ExecutionGraph &g)
{
    for (const auto &n : g.nodes()) {
        if (!n.isLoad() || n.source == invalidNode)
            continue;
        for (NodeId sid : g.storesTo(n.addr)) {
            if (sid == n.source || sid == n.id)
                continue;
            if (g.ordered(n.source, sid) && g.ordered(sid, n.id))
                return true;
        }
    }
    return false;
}

bool
satisfiesStoreAtomicity(const ExecutionGraph &g)
{
    if (hasOverwrittenObservation(g))
        return false;

    const auto loads = resolvedLoads(g);
    for (NodeId lid : loads) {
        const Node &load = g.node(lid);
        const NodeId src = load.source;
        for (NodeId sid : g.storesTo(load.addr)) {
            if (sid == src || sid == lid)
                continue;
            if (g.ordered(sid, lid) && !g.ordered(sid, src))
                return false; // rule a unmet
            if (g.ordered(src, sid) && !g.ordered(lid, sid))
                return false; // rule b unmet
        }
    }
    for (std::size_t i = 0; i < loads.size(); ++i) {
        for (std::size_t j = i + 1; j < loads.size(); ++j) {
            const Node &a = g.node(loads[i]);
            const Node &b = g.node(loads[j]);
            if (a.addr != b.addr || a.source == b.source)
                continue;
            Bitset ancestors = g.preds(a.id);
            ancestors &= g.preds(b.id);
            Bitset successors = g.succs(a.source);
            successors &= g.succs(b.source);
            bool unmet = false;
            ancestors.forEach([&](std::size_t an) {
                successors.forEach([&](std::size_t bn) {
                    if (!g.ordered(static_cast<NodeId>(an),
                                   static_cast<NodeId>(bn)))
                        unmet = true;
                });
            });
            if (unmet)
                return false; // rule c unmet
        }
    }
    return true;
}

std::vector<NodeId>
candidateStores(const ExecutionGraph &g, NodeId load)
{
    const Node &ln = g.node(load);
    std::vector<NodeId> out;
    if (!ln.addrKnown)
        return out;

    // Above one closure-row word, an unresolved-node mask turns the
    // per-store "is every predecessor resolved" scan into one row
    // intersection; the mask is thread-local scratch (cleared, never
    // reallocated) and costs one pass over the node table.  At or
    // below 64 nodes that pass costs more than walking the handful of
    // predecessor bits directly, so small graphs skip the mask.
    const bool useMask = g.size() > 64;
    thread_local Bitset unresolved;
    bool anyUnresolved = false;
    if (useMask) {
        unresolved.clear();
        unresolved.resize(static_cast<std::size_t>(g.size()));
        for (const Node &n : g.nodes()) {
            if (!n.resolved()) {
                unresolved.set(static_cast<std::size_t>(n.id));
                anyUnresolved = true;
            }
        }
    }

    const auto sameAddr = g.storesTo(ln.addr);
    for (NodeId sid : sameAddr) {
        const Node &sn = g.node(sid);
        if (!sn.valueKnown)
            continue;
        if (g.ordered(load, sid))
            continue; // observing it would close a cycle

        // 1. Everything before S must be resolved.
        if (useMask) {
            if (anyUnresolved) {
                const auto row = g.preds(sid);
                if (kern::anyAnd(row.words(),
                                 unresolved.words().data(),
                                 std::min(row.nwords(),
                                          unresolved.words().size())))
                    continue;
            }
        } else {
            bool predsResolved = true;
            const auto row = g.preds(sid);
            const std::uint64_t *w = row.words();
            const std::size_t nw = row.nwords();
            for (std::size_t wi = 0; wi < nw && predsResolved; ++wi) {
                std::uint64_t word = w[wi];
                while (word) {
                    const int bit = __builtin_ctzll(word);
                    word &= word - 1;
                    const auto p =
                        static_cast<NodeId>(64 * wi +
                                            static_cast<std::size_t>(bit));
                    if (!g.node(p).resolved()) {
                        predsResolved = false;
                        break;
                    }
                }
            }
            if (!predsResolved)
                continue;
        }

        // 2. S must not certainly be overwritten before L.
        bool overwritten = false;
        for (NodeId oid : sameAddr) {
            if (oid == sid)
                continue;
            if (g.ordered(sid, oid) && g.ordered(oid, load)) {
                overwritten = true;
                break;
            }
        }

        // 3. An atomic read-modify-write immediately overwrites what
        //    it observes, so a Store can source at most one Rmw: rule
        //    b would otherwise order each Rmw before the other.
        if (!overwritten && ln.kind == NodeKind::Rmw) {
            for (const Node &other : g.nodes()) {
                if (other.kind == NodeKind::Rmw && other.id != load &&
                    other.source == sid) {
                    overwritten = true;
                    break;
                }
            }
        }
        if (!overwritten)
            out.push_back(sid);
    }
    return out;
}

bool
predecessorLoadsResolved(const ExecutionGraph &g, NodeId id)
{
    // Word-skipping early-exit scan: the common case is "all
    // resolved", and the first unresolved predecessor Load settles it.
    const auto row = g.preds(id);
    const std::uint64_t *w = row.words();
    const std::size_t nw = row.nwords();
    for (std::size_t wi = kern::findNonZero(w, nw, 0); wi < nw;
         wi = kern::findNonZero(w, nw, wi + 1)) {
        std::uint64_t word = w[wi];
        while (word) {
            const int b = __builtin_ctzll(word);
            const Node &n = g.node(
                static_cast<NodeId>(wi * 64 + static_cast<std::size_t>(b)));
            if (n.isLoad() && n.source == invalidNode)
                return false;
            word &= word - 1;
        }
    }
    return true;
}

} // namespace satom
