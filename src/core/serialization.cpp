#include "core/serialization.hpp"

#include <map>

namespace satom
{

namespace
{

/**
 * Depth-first enumeration of valid serializations.  Shared by the
 * witness search (stopAtFirst) and the full enumeration.
 */
class Search
{
  public:
    Search(const ExecutionGraph &g, const SerializationOptions &opts,
           bool stopAtFirst)
        : g_(g), opts_(opts), stopAtFirst_(stopAtFirst),
          emitted_(static_cast<std::size_t>(g.size()))
    {
    }

    /** Run; returns false if the cap was exceeded. */
    bool
    run()
    {
        order_.reserve(static_cast<std::size_t>(g_.size()));
        return dfs();
    }

    const std::vector<std::vector<NodeId>> &results() const
    {
        return results_;
    }

  private:
    bool
    emittable(const Node &n) const
    {
        bool ok = true;
        g_.preds(n.id).forEach([&](std::size_t p) {
            if (!emitted_.test(p))
                ok = false;
        });
        return ok;
    }

    /** The "most recent Store" rule for a Load about to be emitted. */
    bool
    loadReadsLast(const Node &n) const
    {
        if (n.source == invalidNode)
            return false; // unresolved Loads cannot be serialized
        // An exempted bypass Load read the local Store pipeline; it may
        // appear anywhere relative to the memory order of its source.
        if (opts_.exemptBypassedLoads && n.bypass)
            return true;
        auto it = lastStore_.find(n.addr);
        return it != lastStore_.end() && it->second == n.source;
    }

    bool
    dfs()
    {
        if (order_.size() == static_cast<std::size_t>(g_.size())) {
            results_.push_back(order_);
            return stopAtFirst_ ||
                   static_cast<long>(results_.size()) < opts_.cap;
        }
        for (const Node &n : g_.nodes()) {
            if (emitted_.test(static_cast<std::size_t>(n.id)))
                continue;
            if (!emittable(n))
                continue;
            if (n.isLoad() && !loadReadsLast(n))
                continue;

            NodeId savedLast = invalidNode;
            bool hadLast = false;
            if (n.isStore()) {
                auto it = lastStore_.find(n.addr);
                if (it != lastStore_.end()) {
                    hadLast = true;
                    savedLast = it->second;
                }
                lastStore_[n.addr] = n.id;
            }
            emitted_.set(static_cast<std::size_t>(n.id));
            order_.push_back(n.id);

            const bool keepGoing = dfs();

            order_.pop_back();
            emitted_.reset(static_cast<std::size_t>(n.id));
            if (n.isStore()) {
                if (hadLast)
                    lastStore_[n.addr] = savedLast;
                else
                    lastStore_.erase(n.addr);
            }

            if (!keepGoing)
                return false;
            if (stopAtFirst_ && !results_.empty())
                return true;
        }
        return true;
    }

    const ExecutionGraph &g_;
    const SerializationOptions &opts_;
    const bool stopAtFirst_;

    Bitset emitted_;
    std::vector<NodeId> order_;
    std::map<Addr, NodeId> lastStore_;
    std::vector<std::vector<NodeId>> results_;
};

} // namespace

std::optional<std::vector<NodeId>>
findSerialization(const ExecutionGraph &g, const SerializationOptions &opts)
{
    Search s(g, opts, true);
    s.run();
    if (s.results().empty())
        return std::nullopt;
    return s.results().front();
}

bool
isSerializable(const ExecutionGraph &g, const SerializationOptions &opts)
{
    return findSerialization(g, opts).has_value();
}

std::optional<std::vector<std::vector<NodeId>>>
enumerateSerializations(const ExecutionGraph &g,
                        const SerializationOptions &opts)
{
    Search s(g, opts, false);
    const bool complete = s.run();
    if (!complete)
        return std::nullopt;
    return s.results();
}

std::optional<std::vector<Bitset>>
serializationIntersection(const ExecutionGraph &g,
                          const SerializationOptions &opts)
{
    const auto all = enumerateSerializations(g, opts);
    if (!all || all->empty())
        return std::nullopt;

    const std::size_t n = static_cast<std::size_t>(g.size());
    std::vector<Bitset> before(n, Bitset(n));
    // Start from "everything precedes everything" and intersect.
    for (auto &b : before)
        for (std::size_t i = 0; i < n; ++i)
            b.set(i);
    for (std::size_t i = 0; i < n; ++i)
        before[i].reset(i);

    std::vector<std::size_t> pos(n);
    for (const auto &order : *all) {
        for (std::size_t i = 0; i < order.size(); ++i)
            pos[static_cast<std::size_t>(order[i])] = i;
        for (std::size_t v = 0; v < n; ++v) {
            for (std::size_t u = 0; u < n; ++u) {
                if (u != v && pos[u] >= pos[v])
                    before[v].reset(u);
            }
        }
    }
    return before;
}

} // namespace satom
