/**
 * @file
 * The execution graph: a DAG over dynamic instructions.
 *
 * The graph maintains the strict partial order `@` ("before", Section 3 of
 * the paper) as a full transitive closure, stored as one predecessor and
 * one successor bit row per node (packed into two contiguous BitMatrix
 * buffers so that copying a graph — which the enumerator does on every
 * fork — costs two buffer copies rather than one allocation per node)
 * and updated incrementally on every edge insertion.  Edge kinds follow
 * Figure 2:
 *
 *  - Local:     thread-local ordering `≺` (reordering axioms + dataflow),
 *  - Source:    observation edges source(L) -> L,
 *  - Atomicity: derived Store Atomicity edges (Figure 6),
 *  - Grey:      TSO bypass observations (Section 6) which record the
 *               source map but deliberately do NOT enter `@`.
 *
 * Inserting an edge that would close a cycle fails and leaves the closure
 * untouched; callers treat that as a serializability violation (or a
 * speculation failure requiring rollback).
 *
 * Address-resolved Stores are additionally indexed by address, so the
 * storesTo() lookups in the Store Atomicity closure and the candidate
 * computation — the hottest loops of the enumeration — do not scan the
 * node table.  Store addresses must therefore be resolved through
 * resolveAddr() (or be known at addNode() time); Node::addr of a Store
 * must not be mutated behind the graph's back.
 */

#pragma once

#include <string>
#include <vector>

#include "core/node.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitset.hpp"

namespace satom
{

/** Kinds of graph edges (Figure 2 plus TSO grey edges). */
enum class EdgeKind
{
    Local,     ///< solid: reordering axioms and data dependencies
    Source,    ///< ringed: Load observes Store
    Atomicity, ///< dotted: derived Store Atomicity constraint
    Grey,      ///< TSO bypass; not part of `@`
};

/** A direct (non-derived-by-transitivity) edge. */
struct Edge
{
    NodeId from = invalidNode;
    NodeId to = invalidNode;
    EdgeKind kind = EdgeKind::Local;
};

/** One entry of the address -> Store index, sorted by (addr, id). */
struct StoreIndexEntry
{
    Addr addr = 0;
    NodeId id = invalidNode;
};

/**
 * The address-resolved Stores to one address, in ascending node-id
 * order.  A lightweight view into the graph's store index; invalidated
 * by addNode()/resolveAddr() like any index iterator.
 */
class StoreRange
{
  public:
    class iterator
    {
      public:
        explicit iterator(const StoreIndexEntry *p) : p_(p) {}
        NodeId operator*() const { return p_->id; }
        iterator &
        operator++()
        {
            ++p_;
            return *this;
        }
        bool operator!=(const iterator &o) const { return p_ != o.p_; }
        bool operator==(const iterator &o) const { return p_ == o.p_; }

      private:
        const StoreIndexEntry *p_;
    };

    StoreRange(const StoreIndexEntry *b, const StoreIndexEntry *e)
        : b_(b), e_(e)
    {
    }

    iterator begin() const { return iterator(b_); }
    iterator end() const { return iterator(e_); }
    bool empty() const { return b_ == e_; }
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(e_ - b_);
    }

  private:
    const StoreIndexEntry *b_;
    const StoreIndexEntry *e_;
};

/**
 * Execution graph with incremental transitive closure.
 */
class ExecutionGraph
{
  public:
    /** Append a node; its id is assigned and returned. */
    NodeId addNode(Node n);

    /** Pre-size internal tables for @p n nodes (capacity only). */
    void reserveNodes(int n);

    /**
     * Become a copy of @p other while re-using this graph's buffers.
     * Equivalent to assignment but performs no allocation once this
     * graph's capacity covers @p other — the enumerator re-uses one
     * scratch graph across finalization checks this way.
     */
    void copyFrom(const ExecutionGraph &other);

    /** Number of nodes. */
    int size() const { return static_cast<int>(nodes_.size()); }

    const Node &node(NodeId id) const { return nodes_[id]; }
    Node &node(NodeId id) { return nodes_[id]; }

    /** All nodes, in creation order. */
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Direct edges, in insertion order (includes Grey edges). */
    const std::vector<Edge> &edges() const { return edges_; }

    /** True iff u `@` v (strictly before). Grey edges excluded. */
    bool
    ordered(NodeId u, NodeId v) const
    {
        return pred_.test(v, static_cast<std::size_t>(u));
    }

    /** True iff u `@` v or v `@` u. */
    bool
    comparable(NodeId u, NodeId v) const
    {
        return ordered(u, v) || ordered(v, u);
    }

    /** Closure predecessors of @p id (everything `@`-before it). */
    BitMatrix::RowView
    preds(NodeId id) const
    {
        return pred_.row(id, nodes_.size());
    }

    /** Closure successors of @p id (everything `@`-after it). */
    BitMatrix::RowView
    succs(NodeId id) const
    {
        return succ_.row(id, nodes_.size());
    }

    /**
     * Insert an edge u -> v of the given kind.
     *
     * Grey edges are recorded but never affect `@`.  For ordering kinds,
     * the transitive closure is updated; if u == v or v `@` u already
     * holds the insertion would create a cycle and the call returns
     * false with the graph unchanged.  Re-inserting an implied ordering
     * succeeds without growing the direct edge list (keeping the direct
     * edges close to the minimal presentation used in the paper's
     * figures).
     */
    bool addEdge(NodeId u, NodeId v, EdgeKind kind);

    /**
     * Resolve the address of memory node @p id to @p a, keeping the
     * address index in sync when the node is a Store.  No-op if the
     * address is already known.
     */
    void resolveAddr(NodeId id, Addr a);

    /** Count of edges added through addEdge with the given kind. */
    int edgeCount(EdgeKind kind) const;

    /** Total ordered pairs in the closure (size of `@`). */
    std::size_t closureSize() const;

    /** True iff every node is resolved. */
    bool allResolved() const;

    /** Ids of all Load nodes. */
    std::vector<NodeId> loads() const;

    /** Ids of all Store nodes (including Init). */
    std::vector<NodeId> stores() const;

    /**
     * Address-resolved Store nodes to @p a, ascending id.  O(log S)
     * via the address index; the returned view is invalidated by
     * addNode() and resolveAddr().
     */
    StoreRange storesTo(Addr a) const;

    /**
     * Nodes whose ordering-relevant state changed since the last
     * markClosed(): new nodes, both cones of every inserted ordering
     * edge, the endpoints of Grey edges (the source map changed even
     * though `@` did not), and late-resolved addresses.  The Store
     * Atomicity closure restricts its fixpoint to this frontier.
     */
    const Bitset &dirtySince() const { return dirty_; }

    /** Forget the dirty frontier without asserting closure. */
    void
    clearDirty()
    {
        dirty_.clear();
    }

    /**
     * True iff the last completed Store Atomicity close ran with rule
     * (c) enabled and nothing was dirtied since.  A rule-(c) close of
     * a graph whose flag is false must sweep all nodes: rules (a)/(b)
     * alone do not establish the pairwise rule-(c) obligations.
     */
    bool ruleCClosed() const { return ruleCClosed_; }

    /**
     * Record that a Store Atomicity close just completed (with rule
     * (c) iff @p ruleC): clears the frontier and sets the coverage
     * flag.  Also used when adopting decoded snapshot graphs, whose
     * edge replay marks every row dirty even though the persisted
     * state was closed — without this, resumed runs would re-examine
     * everything and their frontier counters would diverge from
     * uninterrupted ones.
     */
    void
    markClosed(bool ruleC)
    {
        dirty_.clear();
        ruleCClosed_ = ruleC;
    }

  private:
    void indexStore(Addr a, NodeId id);
    void markDirty(std::size_t i);

    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
    BitMatrix pred_;
    BitMatrix succ_;
    std::vector<StoreIndexEntry> storeIndex_;
    Bitset dirty_;
    bool ruleCClosed_ = false;
};

} // namespace satom
