/**
 * @file
 * The execution graph: a DAG over dynamic instructions.
 *
 * The graph maintains the strict partial order `@` ("before", Section 3 of
 * the paper) as a full transitive closure, stored as one predecessor and
 * one successor bitset per node and updated incrementally on every edge
 * insertion.  Edge kinds follow Figure 2:
 *
 *  - Local:     thread-local ordering `≺` (reordering axioms + dataflow),
 *  - Source:    observation edges source(L) -> L,
 *  - Atomicity: derived Store Atomicity edges (Figure 6),
 *  - Grey:      TSO bypass observations (Section 6) which record the
 *               source map but deliberately do NOT enter `@`.
 *
 * Inserting an edge that would close a cycle fails and leaves the closure
 * untouched; callers treat that as a serializability violation (or a
 * speculation failure requiring rollback).
 */

#pragma once

#include <string>
#include <vector>

#include "core/node.hpp"
#include "util/bitset.hpp"

namespace satom
{

/** Kinds of graph edges (Figure 2 plus TSO grey edges). */
enum class EdgeKind
{
    Local,     ///< solid: reordering axioms and data dependencies
    Source,    ///< ringed: Load observes Store
    Atomicity, ///< dotted: derived Store Atomicity constraint
    Grey,      ///< TSO bypass; not part of `@`
};

/** A direct (non-derived-by-transitivity) edge. */
struct Edge
{
    NodeId from = invalidNode;
    NodeId to = invalidNode;
    EdgeKind kind = EdgeKind::Local;
};

/**
 * Execution graph with incremental transitive closure.
 */
class ExecutionGraph
{
  public:
    /** Append a node; its id is assigned and returned. */
    NodeId addNode(Node n);

    /** Number of nodes. */
    int size() const { return static_cast<int>(nodes_.size()); }

    const Node &node(NodeId id) const { return nodes_[id]; }
    Node &node(NodeId id) { return nodes_[id]; }

    /** All nodes, in creation order. */
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Direct edges, in insertion order (includes Grey edges). */
    const std::vector<Edge> &edges() const { return edges_; }

    /** True iff u `@` v (strictly before). Grey edges excluded. */
    bool
    ordered(NodeId u, NodeId v) const
    {
        return pred_[v].test(static_cast<std::size_t>(u));
    }

    /** True iff u `@` v or v `@` u. */
    bool
    comparable(NodeId u, NodeId v) const
    {
        return ordered(u, v) || ordered(v, u);
    }

    /** Closure predecessors of @p id (everything `@`-before it). */
    const Bitset &preds(NodeId id) const { return pred_[id]; }

    /** Closure successors of @p id (everything `@`-after it). */
    const Bitset &succs(NodeId id) const { return succ_[id]; }

    /**
     * Insert an edge u -> v of the given kind.
     *
     * Grey edges are recorded but never affect `@`.  For ordering kinds,
     * the transitive closure is updated; if u == v or v `@` u already
     * holds the insertion would create a cycle and the call returns
     * false with the graph unchanged.  Re-inserting an implied ordering
     * succeeds without growing the direct edge list (keeping the direct
     * edges close to the minimal presentation used in the paper's
     * figures).
     */
    bool addEdge(NodeId u, NodeId v, EdgeKind kind);

    /** Count of edges added through addEdge with the given kind. */
    int edgeCount(EdgeKind kind) const;

    /** Total ordered pairs in the closure (size of `@`). */
    std::size_t closureSize() const;

    /** True iff every node is resolved. */
    bool allResolved() const;

    /** Ids of all Load nodes. */
    std::vector<NodeId> loads() const;

    /** Ids of all Store nodes (including Init). */
    std::vector<NodeId> stores() const;

    /**
     * Ids of address-resolved Store nodes to @p a.
     */
    std::vector<NodeId> storesTo(Addr a) const;

  private:
    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
    std::vector<Bitset> pred_;
    std::vector<Bitset> succ_;
};

} // namespace satom
