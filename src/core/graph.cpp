#include "core/graph.hpp"

#include <sstream>

namespace satom
{

std::string
Node::label() const
{
    std::ostringstream out;
    if (tid == initThread)
        out << "I";
    else
        out << static_cast<char>('A' + tid) << "." << serial;
    out << ":";
    switch (kind) {
      case NodeKind::Init:
        out << "Init[" << addr << "]=" << value;
        break;
      case NodeKind::Store:
        out << "St[";
        if (addrKnown)
            out << addr;
        else
            out << "?";
        out << "]";
        if (valueKnown)
            out << "=" << value;
        break;
      case NodeKind::Load:
        out << "Ld[";
        if (addrKnown)
            out << addr;
        else
            out << "?";
        out << "]";
        if (source != invalidNode)
            out << "=" << value;
        break;
      case NodeKind::Fence:
        out << (instr.op == Opcode::Fence ? instr.fence.toString()
                                          : "Fence");
        break;
      case NodeKind::Rmw:
        out << toString(instr.op) << "[";
        if (addrKnown)
            out << addr;
        else
            out << "?";
        out << "]";
        if (source != invalidNode)
            out << "=" << loaded << ">" << value;
        break;
      case NodeKind::Branch:
        out << "Br";
        break;
      case NodeKind::Alu:
        out << toString(instr.op);
        if (valueKnown)
            out << "=" << value;
        break;
    }
    return out.str();
}

NodeId
ExecutionGraph::addNode(Node n)
{
    const NodeId id = static_cast<NodeId>(nodes_.size());
    n.id = id;
    nodes_.push_back(std::move(n));

    const std::size_t cap = nodes_.size();
    pred_.emplace_back(cap);
    succ_.emplace_back(cap);
    for (auto &b : pred_)
        b.resize(cap);
    for (auto &b : succ_)
        b.resize(cap);
    return id;
}

bool
ExecutionGraph::addEdge(NodeId u, NodeId v, EdgeKind kind)
{
    if (kind == EdgeKind::Grey) {
        edges_.push_back({u, v, kind});
        return true;
    }
    if (u == v)
        return false;
    if (pred_[u].test(static_cast<std::size_t>(v)))
        return false; // would close a cycle
    if (pred_[v].test(static_cast<std::size_t>(u)))
        return true; // already implied; keep direct edges minimal

    edges_.push_back({u, v, kind});

    // Everything at-or-before u is now before everything at-or-after v.
    Bitset before = pred_[u];
    before.set(static_cast<std::size_t>(u));
    Bitset after = succ_[v];
    after.set(static_cast<std::size_t>(v));

    after.forEach([&](std::size_t s) { pred_[s] |= before; });
    before.forEach([&](std::size_t p) { succ_[p] |= after; });
    return true;
}

int
ExecutionGraph::edgeCount(EdgeKind kind) const
{
    int n = 0;
    for (const auto &e : edges_)
        if (e.kind == kind)
            ++n;
    return n;
}

std::size_t
ExecutionGraph::closureSize() const
{
    std::size_t n = 0;
    for (const auto &b : pred_)
        n += b.count();
    return n;
}

bool
ExecutionGraph::allResolved() const
{
    for (const auto &n : nodes_)
        if (!n.resolved())
            return false;
    return true;
}

std::vector<NodeId>
ExecutionGraph::loads() const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_)
        if (n.isLoad())
            out.push_back(n.id);
    return out;
}

std::vector<NodeId>
ExecutionGraph::stores() const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_)
        if (n.isStore())
            out.push_back(n.id);
    return out;
}

std::vector<NodeId>
ExecutionGraph::storesTo(Addr a) const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_)
        if (n.isStore() && n.addrKnown && n.addr == a)
            out.push_back(n.id);
    return out;
}

} // namespace satom
