#include "core/graph.hpp"

#include <algorithm>
#include <sstream>

namespace satom
{

std::string
Node::label() const
{
    std::ostringstream out;
    if (tid == initThread)
        out << "I";
    else
        out << static_cast<char>('A' + tid) << "." << serial;
    out << ":";
    switch (kind) {
      case NodeKind::Init:
        out << "Init[" << addr << "]=" << value;
        break;
      case NodeKind::Store:
        out << "St[";
        if (addrKnown)
            out << addr;
        else
            out << "?";
        out << "]";
        if (valueKnown)
            out << "=" << value;
        break;
      case NodeKind::Load:
        out << "Ld[";
        if (addrKnown)
            out << addr;
        else
            out << "?";
        out << "]";
        if (source != invalidNode)
            out << "=" << value;
        break;
      case NodeKind::Fence:
        out << (instr.op == Opcode::Fence ? instr.fence.toString()
                                          : "Fence");
        break;
      case NodeKind::Rmw:
        out << toString(instr.op) << "[";
        if (addrKnown)
            out << addr;
        else
            out << "?";
        out << "]";
        if (source != invalidNode)
            out << "=" << loaded << ">" << value;
        break;
      case NodeKind::Branch:
        out << "Br";
        break;
      case NodeKind::Alu:
        out << toString(instr.op);
        if (valueKnown)
            out << "=" << value;
        break;
    }
    return out.str();
}

NodeId
ExecutionGraph::addNode(Node n)
{
    const NodeId id = static_cast<NodeId>(nodes_.size());
    n.id = id;
    if (n.isStore() && n.addrKnown)
        indexStore(n.addr, id);
    nodes_.push_back(std::move(n));
    pred_.addRow();
    succ_.addRow();
    markDirty(static_cast<std::size_t>(id));
    return id;
}

void
ExecutionGraph::markDirty(std::size_t i)
{
    if (i >= dirty_.size())
        dirty_.resize(nodes_.size());
    dirty_.set(i);
}

void
ExecutionGraph::reserveNodes(int n)
{
    nodes_.reserve(static_cast<std::size_t>(n));
    pred_.reserve(n);
    succ_.reserve(n);
}

void
ExecutionGraph::copyFrom(const ExecutionGraph &other)
{
    nodes_ = other.nodes_;
    edges_ = other.edges_;
    pred_.assignFrom(other.pred_);
    succ_.assignFrom(other.succ_);
    storeIndex_ = other.storeIndex_;
    dirty_ = other.dirty_;
    ruleCClosed_ = other.ruleCClosed_;
}

void
ExecutionGraph::indexStore(Addr a, NodeId id)
{
    const StoreIndexEntry e{a, id};
    const auto pos = std::lower_bound(
        storeIndex_.begin(), storeIndex_.end(), e,
        [](const StoreIndexEntry &x, const StoreIndexEntry &y) {
            return x.addr != y.addr ? x.addr < y.addr : x.id < y.id;
        });
    storeIndex_.insert(pos, e);
}

void
ExecutionGraph::resolveAddr(NodeId id, Addr a)
{
    Node &n = nodes_[id];
    if (n.addrKnown)
        return;
    n.addrKnown = true;
    n.addr = a;
    if (n.isStore())
        indexStore(a, id);
    // A late-resolved address changes which loads/stores the closure
    // rules relate, even though no closure row moved.
    markDirty(static_cast<std::size_t>(id));
}

bool
ExecutionGraph::addEdge(NodeId u, NodeId v, EdgeKind kind)
{
    if (kind == EdgeKind::Grey) {
        edges_.push_back({u, v, kind});
        // The source map changed without any closure row moving; the
        // closure rules read source(L), so the endpoints re-enter the
        // frontier (the TSO bypass path depends on this).
        markDirty(static_cast<std::size_t>(u));
        markDirty(static_cast<std::size_t>(v));
        return true;
    }
    if (u == v)
        return false;
    if (pred_.test(u, static_cast<std::size_t>(v)))
        return false; // would close a cycle
    if (pred_.test(v, static_cast<std::size_t>(u))) {
        // Already implied; keep direct edges minimal.  No closure row
        // moves, but callers attach meaning to the edge itself —
        // applySource updates source(L) right before adding the Source
        // edge — so the endpoints must still re-enter the frontier or
        // an incremental close would never re-examine the load.
        markDirty(static_cast<std::size_t>(u));
        markDirty(static_cast<std::size_t>(v));
        return true;
    }

    edges_.push_back({u, v, kind});

    // Everything at-or-before u is now before everything at-or-after v.
    Bitset before = preds(u);
    before.set(static_cast<std::size_t>(u));
    Bitset after = succs(v);
    after.set(static_cast<std::size_t>(v));

    after.forEach([&](std::size_t s) {
        pred_.orInto(static_cast<int>(s), before);
    });
    before.forEach([&](std::size_t p) {
        succ_.orInto(static_cast<int>(p), after);
    });

    // Exactly the rows that changed: pred rows of `after`, succ rows
    // of `before`.
    dirty_.resize(nodes_.size());
    dirty_ |= before;
    dirty_ |= after;
    return true;
}

int
ExecutionGraph::edgeCount(EdgeKind kind) const
{
    int n = 0;
    for (const auto &e : edges_)
        if (e.kind == kind)
            ++n;
    return n;
}

std::size_t
ExecutionGraph::closureSize() const
{
    std::size_t n = 0;
    for (int i = 0; i < size(); ++i)
        n += preds(i).count();
    return n;
}

bool
ExecutionGraph::allResolved() const
{
    for (const auto &n : nodes_)
        if (!n.resolved())
            return false;
    return true;
}

std::vector<NodeId>
ExecutionGraph::loads() const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_)
        if (n.isLoad())
            out.push_back(n.id);
    return out;
}

std::vector<NodeId>
ExecutionGraph::stores() const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_)
        if (n.isStore())
            out.push_back(n.id);
    return out;
}

StoreRange
ExecutionGraph::storesTo(Addr a) const
{
    const auto cmpAddr = [](const StoreIndexEntry &x, Addr y) {
        return x.addr < y;
    };
    const auto *base = storeIndex_.data();
    const auto lo = std::lower_bound(storeIndex_.begin(),
                                     storeIndex_.end(), a, cmpAddr);
    auto hi = lo;
    while (hi != storeIndex_.end() && hi->addr == a)
        ++hi;
    return StoreRange(base + (lo - storeIndex_.begin()),
                      base + (hi - storeIndex_.begin()));
}

} // namespace satom
