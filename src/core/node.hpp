/**
 * @file
 * Nodes of an execution graph.
 *
 * A node is one dynamic instruction instance.  Nodes move from an
 * unresolved to a resolved state as execution proceeds (Section 4 of the
 * paper): ALU ops, Branches, Fences and Stores resolve deterministically
 * via dataflow; Loads resolve by choosing a candidate Store, which is the
 * sole source of non-determinism in the framework.
 */

#pragma once

#include <string>

#include "isa/instruction.hpp"
#include "isa/types.hpp"

namespace satom
{

/** Dense node identifier within one ExecutionGraph. */
using NodeId = int;

/** Sentinel "no node". */
inline constexpr NodeId invalidNode = -1;

/**
 * Node categories; Init marks memory-initializing Stores and Rmw the
 * atomic read-modify-write operations (which act as Load and Store at
 * once, Section 8 of the paper).
 */
enum class NodeKind
{
    Alu,
    Branch,
    Load,
    Store,
    Fence,
    Init,
    Rmw,
};

/**
 * Figure 1 classes of a node kind (Init behaves as a Store; Rmw as
 * both Load and Store).  Ordering code combines requirements over the
 * cross product of the two class sets.
 */
inline std::pair<InstrClass, InstrClass>
classesOfKind(NodeKind k)
{
    switch (k) {
      case NodeKind::Alu:
        return {InstrClass::Alu, InstrClass::Alu};
      case NodeKind::Branch:
        return {InstrClass::Branch, InstrClass::Branch};
      case NodeKind::Load:
        return {InstrClass::Load, InstrClass::Load};
      case NodeKind::Store:
      case NodeKind::Init:
        return {InstrClass::Store, InstrClass::Store};
      case NodeKind::Fence:
        return {InstrClass::Fence, InstrClass::Fence};
      case NodeKind::Rmw:
        return {InstrClass::Load, InstrClass::Store};
    }
    return {InstrClass::Alu, InstrClass::Alu}; // unreachable
}

/** Primary Figure 1 class of a node kind. */
inline InstrClass
classOfKind(NodeKind k)
{
    return classesOfKind(k).first;
}

/**
 * One dynamic instruction.
 *
 * Operand producers (aSrc/bSrc/addrSrc/valSrc) are node ids of the
 * instructions whose results feed this node, or invalidNode when the
 * corresponding operand is an immediate or absent.  They are also the
 * data-dependency component of the local order.
 */
struct Node
{
    NodeId id = invalidNode;
    ThreadId tid = initThread;
    int pindex = -1; ///< static instruction index within the thread
    int serial = -1; ///< dynamic per-thread sequence number
    NodeKind kind = NodeKind::Fence;
    Instruction instr; ///< static instruction (unused for Init)

    NodeId aSrc = invalidNode;
    NodeId bSrc = invalidNode;
    NodeId addrSrc = invalidNode;
    NodeId valSrc = invalidNode;

    bool executed = false; ///< value computed / side effect resolved
    bool addrKnown = false;
    Addr addr = 0;
    bool valueKnown = false;
    Val value = 0; ///< computed/loaded value; for Rmw the STORED value

    /** Rmw only: the value the Load half observed (dst register). */
    Val loaded = 0;

    NodeId source = invalidNode; ///< Loads/Rmw: the observed Store
    bool bypass = false; ///< TSO grey observation (source not in @)

    /**
     * Loads only: value was guessed by value prediction before any
     * source was chosen; resolution must later justify it (Section 5).
     */
    bool predicted = false;

    /** Transaction instance this node belongs to, or -1. */
    int txn = -1;

    bool branchTaken = false; ///< Branches: resolved direction

    bool
    isLoad() const
    {
        return kind == NodeKind::Load || kind == NodeKind::Rmw;
    }

    bool
    isStore() const
    {
        return kind == NodeKind::Store || kind == NodeKind::Init ||
               kind == NodeKind::Rmw;
    }

    bool isMemory() const { return isLoad() || isStore(); }

    /**
     * True once this node no longer blocks others: Loads need a chosen
     * source; Stores need address and value; the rest need execution.
     */
    bool
    resolved() const
    {
        if (isLoad())
            return source != invalidNode;
        if (isStore())
            return addrKnown && valueKnown;
        return executed;
    }

    /**
     * The value this node supplies to register consumers: the loaded
     * (old) value for Rmw, the computed/loaded value otherwise.
     */
    Val producedValue() const
    {
        return kind == NodeKind::Rmw ? loaded : value;
    }

    /** Compact label such as "A.2:St[x]=1" for diagnostics and DOT. */
    std::string label() const;
};

} // namespace satom
