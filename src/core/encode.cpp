#include "core/encode.hpp"

#include <sstream>

#include "util/hash.hpp"

namespace satom
{

std::string
encodeGraph(const ExecutionGraph &g, bool memoryOnly)
{
    std::ostringstream out;
    std::vector<NodeId> picked;
    for (const auto &n : g.nodes())
        if (!memoryOnly || n.isMemory())
            picked.push_back(n.id);

    for (NodeId id : picked) {
        const Node &n = g.node(id);
        out << 'n' << id << ':' << n.tid << '.' << n.pindex << '.'
            << n.serial << ':' << static_cast<int>(n.kind) << ':';
        out << (n.addrKnown ? std::to_string(n.addr) : "?") << ':';
        out << (n.valueKnown ? std::to_string(n.value) : "?") << ':';
        out << n.source << (n.bypass ? "g" : "") << ';';
    }
    out << '|';
    for (NodeId v : picked) {
        out << v << '<';
        for (NodeId u : picked)
            if (u != v && g.ordered(u, v))
                out << u << ',';
        out << ';';
    }
    return out.str();
}

std::uint64_t
hashGraph(const ExecutionGraph &g, bool memoryOnly)
{
    return hashString(encodeGraph(g, memoryOnly));
}

} // namespace satom
