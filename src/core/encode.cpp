#include "core/encode.hpp"

#include <algorithm>
#include <sstream>

namespace satom
{

std::string
encodeGraph(const ExecutionGraph &g, bool memoryOnly)
{
    std::ostringstream out;
    std::vector<NodeId> picked;
    for (const auto &n : g.nodes())
        if (!memoryOnly || n.isMemory())
            picked.push_back(n.id);

    for (NodeId id : picked) {
        const Node &n = g.node(id);
        out << 'n' << id << ':' << n.tid << '.' << n.pindex << '.'
            << n.serial << ':' << static_cast<int>(n.kind) << ':';
        out << (n.addrKnown ? std::to_string(n.addr) : "?") << ':';
        out << (n.valueKnown ? std::to_string(n.value) : "?") << ':';
        out << n.source << (n.bypass ? "g" : "") << ';';
    }
    out << '|';
    for (NodeId v : picked) {
        out << v << '<';
        for (NodeId u : picked)
            if (u != v && g.ordered(u, v))
                out << u << ',';
        out << ';';
    }
    return out.str();
}

namespace
{

/** Mix one node's identity, state and source into @p h. */
void
hashNode(StreamHash64 &h, const Node &n)
{
    // Pack the small discriminators into two words so a node costs a
    // handful of mixes, not one per field.
    const std::uint64_t w1 =
        static_cast<std::uint32_t>(n.id) |
        (static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(n.tid + 1))
         << 32) |
        (static_cast<std::uint64_t>(n.kind) << 40) |
        (std::uint64_t{n.addrKnown} << 48) |
        (std::uint64_t{n.valueKnown} << 49) |
        (std::uint64_t{n.bypass} << 50);
    const std::uint64_t w2 =
        static_cast<std::uint32_t>(n.pindex) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             n.serial))
         << 32);
    h.value(w1);
    h.value(w2);
    h.signedValue(n.source);
    if (n.addrKnown)
        h.signedValue(n.addr);
    if (n.valueKnown)
        h.signedValue(n.value);
}

} // namespace

void
hashGraphInto(StreamHash64 &h, const ExecutionGraph &g, bool memoryOnly)
{
    if (!memoryOnly) {
        for (const Node &n : g.nodes())
            hashNode(h, n);
        // Every node is in the key: the predecessor rows ARE the
        // closure.  Hash the raw words, batch-premixed per row.
        for (NodeId v = 0; v < g.size(); ++v) {
            const auto row = g.preds(v);
            const std::size_t n =
                std::min((row.bits() + 63) / 64, row.nwords());
            h.words(row.words(), n);
        }
        return;
    }

    std::vector<NodeId> picked;
    picked.reserve(static_cast<std::size_t>(g.size()));
    for (const auto &n : g.nodes())
        if (n.isMemory())
            picked.push_back(n.id);

    for (NodeId id : picked)
        hashNode(h, g.node(id));
    for (NodeId v : picked) {
        const auto row = g.preds(v);
        for (NodeId u : picked)
            if (u != v && row.test(static_cast<std::size_t>(u)))
                h.signedValue(u);
        h.value(0x726f77); // row separator
    }
}

std::uint64_t
hashGraph(const ExecutionGraph &g, bool memoryOnly)
{
    StreamHash64 h;
    hashGraphInto(h, g, memoryOnly);
    return h.digest();
}

} // namespace satom
