/**
 * @file
 * Graphviz rendering of execution graphs in the visual language of the
 * paper's figures: solid local edges, bold "ringed" observation edges,
 * dotted Store Atomicity edges, and grey TSO bypass edges.
 */

#pragma once

#include <string>

#include "core/graph.hpp"

namespace satom
{

/** Rendering options. */
struct DotOptions
{
    /** Erase non-memory nodes, as the paper's figures do. */
    bool memoryOnly = true;
    /** Graph title. */
    std::string title = "execution";
};

/** Render @p g as a Graphviz digraph. */
std::string graphToDot(const ExecutionGraph &g, const DotOptions &opts = {});

} // namespace satom
