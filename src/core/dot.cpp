#include "core/dot.hpp"

#include <sstream>

namespace satom
{

namespace
{

const char *
edgeStyle(EdgeKind k)
{
    switch (k) {
      case EdgeKind::Local:
        return "style=solid";
      case EdgeKind::Source:
        return "style=bold, color=blue";
      case EdgeKind::Atomicity:
        return "style=dotted";
      case EdgeKind::Grey:
        return "style=dashed, color=grey";
    }
    return "";
}

} // namespace

std::string
graphToDot(const ExecutionGraph &g, const DotOptions &opts)
{
    std::ostringstream out;
    out << "digraph \"" << opts.title << "\" {\n";
    out << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";

    auto visible = [&](NodeId id) {
        return !opts.memoryOnly || g.node(id).isMemory();
    };

    for (const auto &n : g.nodes()) {
        if (!visible(n.id))
            continue;
        out << "  n" << n.id << " [label=\"" << n.label() << "\"];\n";
    }
    for (const auto &e : g.edges()) {
        if (!visible(e.from) || !visible(e.to))
            continue;
        out << "  n" << e.from << " -> n" << e.to << " ["
            << edgeStyle(e.kind) << "];\n";
    }
    out << "}\n";
    return out.str();
}

} // namespace satom
