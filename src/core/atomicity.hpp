/**
 * @file
 * Store Atomicity: the closure rules of Figure 6 and the candidate-Store
 * computation of Section 4.
 *
 * The closure inserts the minimum set of `@` edges demanded by rules
 * a, b and c, iterating to a fixpoint because inserted edges can expose
 * the need for further edges (Figure 7).  A failed insertion means the
 * execution cannot be completed consistently: for non-speculative
 * enumeration this never happens (candidates are chosen safely); for
 * speculative execution it signals that a rollback is required.
 */

#pragma once

#include <vector>

#include "core/graph.hpp"

namespace satom
{

/** Outcome of running the Store Atomicity closure. */
enum class ClosureResult
{
    Ok,        ///< fixpoint reached, graph acyclic and consistent
    Violation, ///< a required edge would close a cycle
};

/** Bookkeeping for benches and tests. */
struct ClosureStats
{
    int iterations = 0; ///< frontier drains (0 when nothing was dirty)
    int edgesAdded = 0; ///< Atomicity edges inserted
    int frontierLoads = 0;   ///< load examinations actually performed
    int frontierSkipped = 0; ///< loads left untouched by the frontier
};

/**
 * Iterate rules a/b/c of Figure 6 to fixpoint over @p g.
 *
 * Rule a: S =a L, S @ L, S != source(L)        => S @ source(L)
 * Rule b: S =a L, source(L) @ S                => L @ S
 * Rule c: L =a L', source(L) != source(L'),
 *         A @ L, A @ L', source(L) @ B, source(L') @ B => A @ B
 *
 * Rules consult the source *map* of each resolved Load, so TSO bypass
 * observations (whose Source edge is Grey and absent from `@`)
 * participate exactly as Section 6 prescribes.
 *
 * The fixpoint is *incremental*: only Loads whose rule inputs — their
 * own closure rows, their source's, or a same-address Store's — were
 * dirtied since the graph's last close re-enter the worklist (the
 * graph tracks the dirty frontier; see ExecutionGraph::dirtySince).
 * The rules are monotone over `@`, so restricting re-examination to
 * the frontier reaches the same fixpoint, the same violation verdicts
 * and the same edge insertions as a full sweep would.  A rule-(c)
 * close of a graph not previously closed under rule (c) falls back to
 * a full sweep, and a close that finds the frontier empty returns the
 * standing verdict without iterating (iterations stays 0).
 *
 * A graph for which this function returned Violation must be
 * discarded (every caller does): the frontier is consumed on entry,
 * so re-closing a violated graph would report the stale Ok.
 *
 * @param g     graph to close (mutated in place)
 * @param stats optional statistics sink
 * @param ruleC apply rule c (disable to model rule-a/b-only checkers
 *              such as TSOtool, which the paper notes is incomplete)
 * @return Ok, or Violation if consistency is impossible
 */
ClosureResult closeStoreAtomicity(ExecutionGraph &g,
                                  ClosureStats *stats = nullptr,
                                  bool ruleC = true);

/**
 * Declaratively check (without mutating) that @p g satisfies Store
 * Atomicity: rules a/b/c already hold and no Load observes a certainly
 * overwritten Store.
 */
bool satisfiesStoreAtomicity(const ExecutionGraph &g);

/**
 * True iff some resolved Load observes a Store that has certainly been
 * overwritten: exists S =a L with source(L) @ S @ L.
 */
bool hasOverwrittenObservation(const ExecutionGraph &g);

/**
 * candidates(L) from Section 4: address-resolved, value-resolved Stores
 * S to L's address such that
 *   1. every operation `@`-before S is resolved,
 *   2. no Store S' to the same address has S @ S' @ L, and
 *   3. L is not already `@`-before S (observing it would close a cycle).
 *
 * The caller must ensure L's address is known and every predecessor Load
 * of L has been resolved (the enumerator's eligibility rule); the
 * function itself only needs the address.
 */
std::vector<NodeId> candidateStores(const ExecutionGraph &g, NodeId load);

/**
 * True iff every Load that is `@`-before @p id is resolved — the
 * enumerator's eligibility condition for resolving a Load.
 */
bool predecessorLoadsResolved(const ExecutionGraph &g, NodeId id);

} // namespace satom
