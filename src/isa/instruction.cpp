#include "isa/instruction.hpp"

#include <sstream>

namespace satom
{

InstrClass
classOf(Opcode op)
{
    switch (op) {
      case Opcode::MovImm:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Xor:
        return InstrClass::Alu;
      case Opcode::Load:
        return InstrClass::Load;
      case Opcode::Store:
        return InstrClass::Store;
      case Opcode::Fence:
        return InstrClass::Fence;
      case Opcode::BranchEq:
      case Opcode::BranchNe:
        return InstrClass::Branch;
      case Opcode::Cas:
      case Opcode::Swap:
      case Opcode::FetchAdd:
        return InstrClass::Load; // primary; see classesOf/isRmwOpcode
      case Opcode::TxBegin:
      case Opcode::TxEnd:
        return InstrClass::Fence; // transaction boundaries fence
    }
    return InstrClass::Alu; // unreachable
}

bool
FenceMask::orders(InstrClass x, InstrClass y) const
{
    if (x == InstrClass::Load && y == InstrClass::Load)
        return loadLoad;
    if (x == InstrClass::Load && y == InstrClass::Store)
        return loadStore;
    if (x == InstrClass::Store && y == InstrClass::Load)
        return storeLoad;
    if (x == InstrClass::Store && y == InstrClass::Store)
        return storeStore;
    return false;
}

std::string
FenceMask::toString() const
{
    if (isFull())
        return "fence";
    std::string s = "fence";
    if (loadLoad)
        s += ".ll";
    if (loadStore)
        s += ".ls";
    if (storeLoad)
        s += ".sl";
    if (storeStore)
        s += ".ss";
    return s;
}

std::string
toString(Opcode op)
{
    switch (op) {
      case Opcode::MovImm: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Xor: return "xor";
      case Opcode::Load: return "ld";
      case Opcode::Store: return "st";
      case Opcode::Fence: return "fence";
      case Opcode::BranchEq: return "beq";
      case Opcode::BranchNe: return "bne";
      case Opcode::Cas: return "cas";
      case Opcode::Swap: return "swap";
      case Opcode::FetchAdd: return "fadd";
      case Opcode::TxBegin: return "txbegin";
      case Opcode::TxEnd: return "txend";
    }
    return "?";
}

namespace
{

std::string
operandStr(const Operand &o)
{
    if (o.isReg())
        return "r" + std::to_string(o.reg);
    if (o.isImm())
        return std::to_string(o.imm);
    return "_";
}

} // namespace

std::string
toString(const Instruction &ins)
{
    std::ostringstream out;
    out << toString(ins.op);
    switch (ins.op) {
      case Opcode::MovImm:
        out << " r" << ins.dst << ", " << operandStr(ins.a);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Xor:
        out << " r" << ins.dst << ", " << operandStr(ins.a) << ", "
            << operandStr(ins.b);
        break;
      case Opcode::Load:
        out << " r" << ins.dst << ", [" << operandStr(ins.addr) << "]";
        break;
      case Opcode::Store:
        out << " [" << operandStr(ins.addr) << "], "
            << operandStr(ins.value);
        break;
      case Opcode::Fence:
        return ins.fence.toString();
      case Opcode::BranchEq:
      case Opcode::BranchNe:
        out << " " << operandStr(ins.a) << ", " << operandStr(ins.b)
            << ", @" << ins.target;
        break;
      case Opcode::Cas:
        out << " r" << ins.dst << ", [" << operandStr(ins.addr)
            << "], " << operandStr(ins.a) << ", "
            << operandStr(ins.b);
        break;
      case Opcode::Swap:
      case Opcode::FetchAdd:
        out << " r" << ins.dst << ", [" << operandStr(ins.addr)
            << "], " << operandStr(ins.a);
        break;
      case Opcode::TxBegin:
      case Opcode::TxEnd:
        break;
    }
    return out.str();
}

} // namespace satom
