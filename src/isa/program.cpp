#include "isa/program.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace satom
{

std::vector<Addr>
Program::locations() const
{
    std::set<Addr> locs;
    for (const auto &t : threads) {
        for (const auto &ins : t.code) {
            if (ins.isMemory() && ins.addr.isImm())
                locs.insert(ins.addr.imm);
        }
    }
    for (const auto &[a, v] : init) {
        (void)v;
        locs.insert(a);
    }
    for (Addr a : extraLocations)
        locs.insert(a);
    return {locs.begin(), locs.end()};
}

std::map<Addr, Val>
Program::initialMemory() const
{
    std::map<Addr, Val> mem;
    for (Addr a : locations())
        mem[a] = 0;
    for (const auto &[a, v] : init)
        mem[a] = v;
    return mem;
}

std::size_t
Program::size() const
{
    std::size_t n = 0;
    for (const auto &t : threads)
        n += t.code.size();
    return n;
}

std::string
Program::toString() const
{
    std::ostringstream out;
    for (const auto &[a, v] : init)
        out << "init [" << a << "] = " << v << '\n';
    for (const auto &t : threads) {
        out << t.name << ":\n";
        for (std::size_t i = 0; i < t.code.size(); ++i)
            out << "  " << i << ": " << satom::toString(t.code[i])
                << '\n';
    }
    return out.str();
}

} // namespace satom
