/**
 * @file
 * Fluent construction of Programs.
 *
 * Example:
 * @code
 *   ProgramBuilder pb;
 *   auto &p0 = pb.thread("P0");
 *   p0.store(X, 1).load(1, Y);
 *   auto &p1 = pb.thread("P1");
 *   p1.store(Y, 1).load(1, X);
 *   Program prog = pb.build();
 * @endcode
 *
 * Branch targets are symbolic labels resolved at build() time.
 */

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace satom
{

/** Builds the code of one thread; created via ProgramBuilder::thread. */
class ThreadBuilder
{
  public:
    explicit ThreadBuilder(std::string name) : name_(std::move(name)) {}

    /** dst := imm */
    ThreadBuilder &movi(Reg dst, Val v);
    /** dst := a + b */
    ThreadBuilder &add(Reg dst, Operand a, Operand b);
    /** dst := a - b */
    ThreadBuilder &sub(Reg dst, Operand a, Operand b);
    /** dst := a * b */
    ThreadBuilder &mul(Reg dst, Operand a, Operand b);
    /** dst := a ^ b */
    ThreadBuilder &xorr(Reg dst, Operand a, Operand b);

    /** dst := mem[addr] with an immediate address. */
    ThreadBuilder &load(Reg dst, Addr addr);
    /** dst := mem[addr] with an arbitrary address operand. */
    ThreadBuilder &load(Reg dst, Operand addr);

    /** mem[addr] := v, immediate address and value. */
    ThreadBuilder &store(Addr addr, Val v);
    /** mem[addr] := value, arbitrary operands. */
    ThreadBuilder &store(Operand addr, Operand value);

    /** Full memory fence. */
    ThreadBuilder &fence();

    /** Partial fence with an explicit ordering mask. */
    ThreadBuilder &fence(FenceMask mask);

    /**
     * dst := mem[addr]; if dst == expected then mem[addr] := desired.
     * Atomic compare-and-swap; dst receives the old value.
     */
    ThreadBuilder &cas(Reg dst, Operand addr, Operand expected,
                       Operand desired);

    /** dst := mem[addr]; mem[addr] := value. Atomic exchange. */
    ThreadBuilder &swap(Reg dst, Operand addr, Operand value);

    /** dst := mem[addr]; mem[addr] := dst + addend. Atomic add. */
    ThreadBuilder &fetchAdd(Reg dst, Operand addr, Operand addend);

    /** Open an atomic transaction (no nesting). */
    ThreadBuilder &txBegin();

    /** Close the current transaction. */
    ThreadBuilder &txEnd();

    /** if a == b goto label */
    ThreadBuilder &beq(Operand a, Operand b, const std::string &label);
    /** if a != b goto label */
    ThreadBuilder &bne(Operand a, Operand b, const std::string &label);

    /** Define @p label at the current position. */
    ThreadBuilder &label(const std::string &label);

    /** Number of instructions emitted so far. */
    std::size_t size() const { return code_.size(); }

  private:
    friend class ProgramBuilder;

    std::string name_;
    std::vector<Instruction> code_;
    std::vector<std::pair<std::size_t, std::string>> fixups_;
    std::map<std::string, int> labels_;
};

/** Builds a whole Program. */
class ProgramBuilder
{
  public:
    /** Create (or retrieve) the builder for thread @p name. */
    ThreadBuilder &thread(const std::string &name);

    /** Set the initial value of a location. */
    ProgramBuilder &init(Addr addr, Val v);

    /** Declare a location reached only via register addressing. */
    ProgramBuilder &location(Addr addr);

    /** Resolve labels and produce the Program. Throws on bad labels. */
    Program build() const;

  private:
    std::vector<std::unique_ptr<ThreadBuilder>> threads_;
    std::map<Addr, Val> init_;
    std::vector<Addr> extraLocations_;
};

} // namespace satom
