/**
 * @file
 * Multithreaded programs over the mini ISA.
 *
 * A Program bundles per-thread instruction sequences with the initial
 * memory image.  Following Section 4 of the paper, "memory is initialized
 * with Store operations before any thread is started"; the enumerator
 * materializes one initializing Store per declared location, so every
 * location used by a program must be declared (either implicitly via an
 * immediate address or explicitly for register-indirect accesses).
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/types.hpp"

namespace satom
{

/** Code of a single thread. */
struct ThreadCode
{
    std::string name;
    std::vector<Instruction> code;
};

/**
 * A whole multithreaded program.
 */
struct Program
{
    std::vector<ThreadCode> threads;

    /** Explicit initial values; locations absent here initialize to 0. */
    std::map<Addr, Val> init;

    /** Extra locations touched only through register addresses. */
    std::vector<Addr> extraLocations;

    int numThreads() const { return static_cast<int>(threads.size()); }

    /**
     * The full, sorted location universe: immediate addresses in the
     * code, initialized addresses, and extraLocations.
     */
    std::vector<Addr> locations() const;

    /**
     * Initial memory image over locations(), defaulting to 0.
     */
    std::map<Addr, Val> initialMemory() const;

    /** Total static instruction count across threads. */
    std::size_t size() const;

    /** Multi-line disassembly of all threads. */
    std::string toString() const;
};

} // namespace satom
