/**
 * @file
 * Instruction set of the mini ISA.
 *
 * The set mirrors the instruction classes of Figure 1 in the paper:
 * arithmetic ("+, etc."), Branch, Load, Store and Fence.  Loads and Stores
 * accept either an immediate address (the common litmus case) or a
 * register address (needed for aliasing, Section 5).
 */

#pragma once

#include <string>

#include "isa/types.hpp"

namespace satom
{

/** Operation selector. */
enum class Opcode
{
    MovImm, ///< dst := imm
    Add,    ///< dst := a + b
    Sub,    ///< dst := a - b
    Mul,    ///< dst := a * b
    Xor,    ///< dst := a ^ b
    Load,   ///< dst := mem[addr]
    Store,  ///< mem[addr] := value
    Fence,  ///< memory fence (full or partial, see FenceMask)
    BranchEq, ///< if a == b goto target
    BranchNe, ///< if a != b goto target
    Cas,      ///< dst := mem[addr]; if dst == a then mem[addr] := b
    Swap,     ///< dst := mem[addr]; mem[addr] := a
    FetchAdd, ///< dst := mem[addr]; mem[addr] := dst + a
    TxBegin,  ///< open an atomic transaction (Section 8 future work)
    TxEnd,    ///< close the current transaction
};

/** True for the atomic read-modify-write opcodes. */
inline bool
isRmwOpcode(Opcode op)
{
    return op == Opcode::Cas || op == Opcode::Swap ||
           op == Opcode::FetchAdd;
}

/**
 * The five instruction classes of the reordering table (Figure 1).
 * Read-modify-write opcodes belong to both Load and Store; ordering
 * code queries classesOf() and combines requirements.
 */
enum class InstrClass
{
    Alu,
    Branch,
    Load,
    Store,
    Fence,
};

/** Number of InstrClass values; used to size reorder tables. */
inline constexpr int numInstrClasses = 5;

/** Map an opcode to its primary Figure 1 row/column class. */
InstrClass classOf(Opcode op);

/**
 * Orderings requested by a Fence, SPARC-membar style: bit XY orders
 * every prior X against every later Y.  A full fence sets all four.
 * Partial fences insert direct prior-op -> later-op edges instead of
 * routing through the Fence node, so combined masks never over-order
 * (a #StoreLoad|#LoadStore membar must not order Store->Store).
 */
struct FenceMask
{
    bool loadLoad = false;
    bool loadStore = false;
    bool storeLoad = false;
    bool storeStore = false;

    static FenceMask full() { return {true, true, true, true}; }

    /** Acquire: later accesses stay after prior Loads. */
    static FenceMask acquire() { return {true, true, false, false}; }

    /** Release: prior accesses stay before later Stores. */
    static FenceMask release() { return {false, true, false, true}; }

    bool
    isFull() const
    {
        return loadLoad && loadStore && storeLoad && storeStore;
    }

    bool
    none() const
    {
        return !loadLoad && !loadStore && !storeLoad && !storeStore;
    }

    /** Does this mask order prior class @p x against later @p y? */
    bool orders(InstrClass x, InstrClass y) const;

    std::string toString() const;
};

/** Short mnemonic for an opcode. */
std::string toString(Opcode op);

/**
 * An instruction operand: absent, a register, or an immediate.
 */
struct Operand
{
    enum class Kind { None, Reg, Imm };

    Kind kind = Kind::None;
    Reg reg = -1;
    Val imm = 0;

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }

    bool
    operator==(const Operand &o) const
    {
        return kind == o.kind && reg == o.reg && imm == o.imm;
    }
};

/** Make a register operand. */
inline Operand
regOp(Reg r)
{
    return {Operand::Kind::Reg, r, 0};
}

/** Make an immediate operand. */
inline Operand
immOp(Val v)
{
    return {Operand::Kind::Imm, -1, v};
}

/**
 * One static instruction.
 *
 * Fields are used per opcode:
 *  - MovImm: dst, a(imm)
 *  - Add/Sub/Mul/Xor: dst, a, b
 *  - Load: dst, addr
 *  - Store: addr, value
 *  - Fence: fence (the mask; defaults to full)
 *  - BranchEq/Ne: a, b, target
 *  - Cas: dst(old), addr, a(expected), b(desired)
 *  - Swap: dst(old), addr, a(new value)
 *  - FetchAdd: dst(old), addr, a(addend)
 */
struct Instruction
{
    Opcode op = Opcode::Fence;
    Reg dst = -1;
    Operand a;
    Operand b;
    Operand addr;
    Operand value;
    int target = -1; ///< branch target: index into the thread's code
    FenceMask fence = FenceMask::full(); ///< Fence opcodes only

    InstrClass cls() const { return classOf(op); }

    bool isMemory() const
    {
        return op == Opcode::Load || op == Opcode::Store ||
               isRmwOpcode(op);
    }

    bool isBranch() const
    {
        return op == Opcode::BranchEq || op == Opcode::BranchNe;
    }
};

/** Disassemble one instruction, e.g. "St [x] <- r2". */
std::string toString(const Instruction &ins);

} // namespace satom
