/**
 * @file
 * Fundamental value types of the mini ISA.
 *
 * The framework models fixed-size aligned word accesses, as the paper does
 * (Section 8 notes byte granularity is an orthogonal complication).
 * Addresses and data share one integer domain so that addresses can be
 * stored to and loaded from memory — required for the address-aliasing
 * speculation study (Section 5), where location `x` holds a pointer.
 */

#pragma once

#include <cstdint>

namespace satom
{

/** Register index within a thread (dense, small). */
using Reg = int;

/** Memory address. Symbolic litmus locations are small integers. */
using Addr = std::int64_t;

/** Data value. */
using Val = std::int64_t;

/** Thread index within a program. Thread -1 is the init pseudo-thread. */
using ThreadId = int;

/** Pseudo-thread id that owns initializing Stores. */
inline constexpr ThreadId initThread = -1;

} // namespace satom
