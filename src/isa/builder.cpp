#include "isa/builder.hpp"

#include <stdexcept>

namespace satom
{

namespace
{

Instruction
aluInstr(Opcode op, Reg dst, Operand a, Operand b)
{
    Instruction ins;
    ins.op = op;
    ins.dst = dst;
    ins.a = a;
    ins.b = b;
    return ins;
}

} // namespace

ThreadBuilder &
ThreadBuilder::movi(Reg dst, Val v)
{
    Instruction ins;
    ins.op = Opcode::MovImm;
    ins.dst = dst;
    ins.a = immOp(v);
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::add(Reg dst, Operand a, Operand b)
{
    code_.push_back(aluInstr(Opcode::Add, dst, a, b));
    return *this;
}

ThreadBuilder &
ThreadBuilder::sub(Reg dst, Operand a, Operand b)
{
    code_.push_back(aluInstr(Opcode::Sub, dst, a, b));
    return *this;
}

ThreadBuilder &
ThreadBuilder::mul(Reg dst, Operand a, Operand b)
{
    code_.push_back(aluInstr(Opcode::Mul, dst, a, b));
    return *this;
}

ThreadBuilder &
ThreadBuilder::xorr(Reg dst, Operand a, Operand b)
{
    code_.push_back(aluInstr(Opcode::Xor, dst, a, b));
    return *this;
}

ThreadBuilder &
ThreadBuilder::load(Reg dst, Addr addr)
{
    return load(dst, immOp(addr));
}

ThreadBuilder &
ThreadBuilder::load(Reg dst, Operand addr)
{
    Instruction ins;
    ins.op = Opcode::Load;
    ins.dst = dst;
    ins.addr = addr;
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::store(Addr addr, Val v)
{
    return store(immOp(addr), immOp(v));
}

ThreadBuilder &
ThreadBuilder::store(Operand addr, Operand value)
{
    Instruction ins;
    ins.op = Opcode::Store;
    ins.addr = addr;
    ins.value = value;
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::fence()
{
    return fence(FenceMask::full());
}

ThreadBuilder &
ThreadBuilder::fence(FenceMask mask)
{
    Instruction ins;
    ins.op = Opcode::Fence;
    ins.fence = mask;
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::cas(Reg dst, Operand addr, Operand expected,
                   Operand desired)
{
    Instruction ins;
    ins.op = Opcode::Cas;
    ins.dst = dst;
    ins.addr = addr;
    ins.a = expected;
    ins.b = desired;
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::swap(Reg dst, Operand addr, Operand value)
{
    Instruction ins;
    ins.op = Opcode::Swap;
    ins.dst = dst;
    ins.addr = addr;
    ins.a = value;
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::fetchAdd(Reg dst, Operand addr, Operand addend)
{
    Instruction ins;
    ins.op = Opcode::FetchAdd;
    ins.dst = dst;
    ins.addr = addr;
    ins.a = addend;
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::txBegin()
{
    Instruction ins;
    ins.op = Opcode::TxBegin;
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::txEnd()
{
    Instruction ins;
    ins.op = Opcode::TxEnd;
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::beq(Operand a, Operand b, const std::string &label)
{
    Instruction ins;
    ins.op = Opcode::BranchEq;
    ins.a = a;
    ins.b = b;
    fixups_.emplace_back(code_.size(), label);
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::bne(Operand a, Operand b, const std::string &label)
{
    Instruction ins;
    ins.op = Opcode::BranchNe;
    ins.a = a;
    ins.b = b;
    fixups_.emplace_back(code_.size(), label);
    code_.push_back(ins);
    return *this;
}

ThreadBuilder &
ThreadBuilder::label(const std::string &label)
{
    if (labels_.count(label))
        throw std::invalid_argument("duplicate label: " + label);
    labels_[label] = static_cast<int>(code_.size());
    return *this;
}

ThreadBuilder &
ProgramBuilder::thread(const std::string &name)
{
    for (auto &t : threads_) {
        if (t->name_ == name)
            return *t;
    }
    threads_.push_back(std::make_unique<ThreadBuilder>(name));
    return *threads_.back();
}

ProgramBuilder &
ProgramBuilder::init(Addr addr, Val v)
{
    init_[addr] = v;
    return *this;
}

ProgramBuilder &
ProgramBuilder::location(Addr addr)
{
    extraLocations_.push_back(addr);
    return *this;
}

Program
ProgramBuilder::build() const
{
    Program prog;
    prog.init = init_;
    prog.extraLocations = extraLocations_;
    for (const auto &tb : threads_) {
        ThreadCode tc;
        tc.name = tb->name_;
        tc.code = tb->code_;
        for (const auto &[idx, label] : tb->fixups_) {
            auto it = tb->labels_.find(label);
            if (it == tb->labels_.end())
                throw std::invalid_argument("undefined label: " + label);
            tc.code[idx].target = it->second;
        }
        prog.threads.push_back(std::move(tc));
    }
    return prog;
}

} // namespace satom
