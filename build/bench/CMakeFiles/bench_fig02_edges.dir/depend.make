# Empty dependencies file for bench_fig02_edges.
# This may be replaced when dependencies are built.
