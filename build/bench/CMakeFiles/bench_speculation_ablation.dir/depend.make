# Empty dependencies file for bench_speculation_ablation.
# This may be replaced when dependencies are built.
