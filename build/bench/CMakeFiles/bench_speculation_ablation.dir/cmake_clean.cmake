file(REMOVE_RECURSE
  "CMakeFiles/bench_speculation_ablation.dir/bench_speculation_ablation.cpp.o"
  "CMakeFiles/bench_speculation_ablation.dir/bench_speculation_ablation.cpp.o.d"
  "bench_speculation_ablation"
  "bench_speculation_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speculation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
