# Empty dependencies file for bench_fig01_reordering.
# This may be replaced when dependencies are built.
