file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_reordering.dir/bench_fig01_reordering.cpp.o"
  "CMakeFiles/bench_fig01_reordering.dir/bench_fig01_reordering.cpp.o.d"
  "bench_fig01_reordering"
  "bench_fig01_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
