# Empty dependencies file for bench_fig05_rule_c.
# This may be replaced when dependencies are built.
