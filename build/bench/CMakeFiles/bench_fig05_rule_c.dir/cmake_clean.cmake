file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_rule_c.dir/bench_fig05_rule_c.cpp.o"
  "CMakeFiles/bench_fig05_rule_c.dir/bench_fig05_rule_c.cpp.o.d"
  "bench_fig05_rule_c"
  "bench_fig05_rule_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_rule_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
