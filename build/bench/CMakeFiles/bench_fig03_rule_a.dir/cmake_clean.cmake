file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_rule_a.dir/bench_fig03_rule_a.cpp.o"
  "CMakeFiles/bench_fig03_rule_a.dir/bench_fig03_rule_a.cpp.o.d"
  "bench_fig03_rule_a"
  "bench_fig03_rule_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_rule_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
