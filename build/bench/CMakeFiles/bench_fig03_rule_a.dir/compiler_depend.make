# Empty compiler generated dependencies file for bench_fig03_rule_a.
# This may be replaced when dependencies are built.
