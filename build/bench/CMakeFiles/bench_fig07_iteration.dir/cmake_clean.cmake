file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_iteration.dir/bench_fig07_iteration.cpp.o"
  "CMakeFiles/bench_fig07_iteration.dir/bench_fig07_iteration.cpp.o.d"
  "bench_fig07_iteration"
  "bench_fig07_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
