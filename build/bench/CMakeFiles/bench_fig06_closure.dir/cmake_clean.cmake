file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_closure.dir/bench_fig06_closure.cpp.o"
  "CMakeFiles/bench_fig06_closure.dir/bench_fig06_closure.cpp.o.d"
  "bench_fig06_closure"
  "bench_fig06_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
