# Empty compiler generated dependencies file for bench_rmw.
# This may be replaced when dependencies are built.
