file(REMOVE_RECURSE
  "CMakeFiles/bench_rmw.dir/bench_rmw.cpp.o"
  "CMakeFiles/bench_rmw.dir/bench_rmw.cpp.o.d"
  "bench_rmw"
  "bench_rmw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rmw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
