# Empty dependencies file for bench_fig08_speculation.
# This may be replaced when dependencies are built.
