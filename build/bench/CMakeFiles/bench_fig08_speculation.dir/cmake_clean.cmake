file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_speculation.dir/bench_fig08_speculation.cpp.o"
  "CMakeFiles/bench_fig08_speculation.dir/bench_fig08_speculation.cpp.o.d"
  "bench_fig08_speculation"
  "bench_fig08_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
