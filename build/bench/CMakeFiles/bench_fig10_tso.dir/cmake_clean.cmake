file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tso.dir/bench_fig10_tso.cpp.o"
  "CMakeFiles/bench_fig10_tso.dir/bench_fig10_tso.cpp.o.d"
  "bench_fig10_tso"
  "bench_fig10_tso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
