# Empty compiler generated dependencies file for bench_fig10_tso.
# This may be replaced when dependencies are built.
