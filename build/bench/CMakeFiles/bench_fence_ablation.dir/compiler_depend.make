# Empty compiler generated dependencies file for bench_fence_ablation.
# This may be replaced when dependencies are built.
