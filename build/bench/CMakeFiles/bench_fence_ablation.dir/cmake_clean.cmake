file(REMOVE_RECURSE
  "CMakeFiles/bench_fence_ablation.dir/bench_fence_ablation.cpp.o"
  "CMakeFiles/bench_fence_ablation.dir/bench_fence_ablation.cpp.o.d"
  "bench_fence_ablation"
  "bench_fence_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fence_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
