# Empty dependencies file for bench_fig04_rule_b.
# This may be replaced when dependencies are built.
