file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_rule_b.dir/bench_fig04_rule_b.cpp.o"
  "CMakeFiles/bench_fig04_rule_b.dir/bench_fig04_rule_b.cpp.o.d"
  "bench_fig04_rule_b"
  "bench_fig04_rule_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_rule_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
