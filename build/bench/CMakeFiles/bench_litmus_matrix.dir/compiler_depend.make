# Empty compiler generated dependencies file for bench_litmus_matrix.
# This may be replaced when dependencies are built.
