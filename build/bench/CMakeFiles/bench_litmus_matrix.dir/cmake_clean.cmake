file(REMOVE_RECURSE
  "CMakeFiles/bench_litmus_matrix.dir/bench_litmus_matrix.cpp.o"
  "CMakeFiles/bench_litmus_matrix.dir/bench_litmus_matrix.cpp.o.d"
  "bench_litmus_matrix"
  "bench_litmus_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_litmus_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
