# Empty dependencies file for bench_txn.
# This may be replaced when dependencies are built.
