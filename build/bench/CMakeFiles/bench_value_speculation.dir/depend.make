# Empty dependencies file for bench_value_speculation.
# This may be replaced when dependencies are built.
