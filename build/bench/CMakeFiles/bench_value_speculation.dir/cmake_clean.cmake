file(REMOVE_RECURSE
  "CMakeFiles/bench_value_speculation.dir/bench_value_speculation.cpp.o"
  "CMakeFiles/bench_value_speculation.dir/bench_value_speculation.cpp.o.d"
  "bench_value_speculation"
  "bench_value_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
