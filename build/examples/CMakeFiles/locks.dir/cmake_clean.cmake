file(REMOVE_RECURSE
  "CMakeFiles/locks.dir/locks.cpp.o"
  "CMakeFiles/locks.dir/locks.cpp.o.d"
  "locks"
  "locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
