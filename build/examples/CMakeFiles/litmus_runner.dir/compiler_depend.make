# Empty compiler generated dependencies file for litmus_runner.
# This may be replaced when dependencies are built.
