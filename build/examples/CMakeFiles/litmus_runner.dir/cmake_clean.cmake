file(REMOVE_RECURSE
  "CMakeFiles/litmus_runner.dir/litmus_runner.cpp.o"
  "CMakeFiles/litmus_runner.dir/litmus_runner.cpp.o.d"
  "litmus_runner"
  "litmus_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
