# Empty dependencies file for speculation_demo.
# This may be replaced when dependencies are built.
