file(REMOVE_RECURSE
  "CMakeFiles/speculation_demo.dir/speculation_demo.cpp.o"
  "CMakeFiles/speculation_demo.dir/speculation_demo.cpp.o.d"
  "speculation_demo"
  "speculation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
