file(REMOVE_RECURSE
  "CMakeFiles/litmus_suite.dir/litmus_suite.cpp.o"
  "CMakeFiles/litmus_suite.dir/litmus_suite.cpp.o.d"
  "litmus_suite"
  "litmus_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
