# Empty compiler generated dependencies file for litmus_suite.
# This may be replaced when dependencies are built.
