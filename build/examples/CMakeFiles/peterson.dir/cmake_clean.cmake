file(REMOVE_RECURSE
  "CMakeFiles/peterson.dir/peterson.cpp.o"
  "CMakeFiles/peterson.dir/peterson.cpp.o.d"
  "peterson"
  "peterson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peterson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
