# Empty compiler generated dependencies file for peterson.
# This may be replaced when dependencies are built.
