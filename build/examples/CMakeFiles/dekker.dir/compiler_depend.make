# Empty compiler generated dependencies file for dekker.
# This may be replaced when dependencies are built.
