file(REMOVE_RECURSE
  "CMakeFiles/dekker.dir/dekker.cpp.o"
  "CMakeFiles/dekker.dir/dekker.cpp.o.d"
  "dekker"
  "dekker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dekker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
