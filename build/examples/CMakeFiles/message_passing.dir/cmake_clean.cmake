file(REMOVE_RECURSE
  "CMakeFiles/message_passing.dir/message_passing.cpp.o"
  "CMakeFiles/message_passing.dir/message_passing.cpp.o.d"
  "message_passing"
  "message_passing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_passing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
