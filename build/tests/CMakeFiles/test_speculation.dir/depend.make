# Empty dependencies file for test_speculation.
# This may be replaced when dependencies are built.
