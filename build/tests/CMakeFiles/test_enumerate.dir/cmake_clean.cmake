file(REMOVE_RECURSE
  "CMakeFiles/test_enumerate.dir/test_enumerate.cpp.o"
  "CMakeFiles/test_enumerate.dir/test_enumerate.cpp.o.d"
  "test_enumerate"
  "test_enumerate.pdb"
  "test_enumerate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enumerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
