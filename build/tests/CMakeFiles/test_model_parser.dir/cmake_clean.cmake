file(REMOVE_RECURSE
  "CMakeFiles/test_model_parser.dir/test_model_parser.cpp.o"
  "CMakeFiles/test_model_parser.dir/test_model_parser.cpp.o.d"
  "test_model_parser"
  "test_model_parser.pdb"
  "test_model_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
