# Empty compiler generated dependencies file for test_model_parser.
# This may be replaced when dependencies are built.
