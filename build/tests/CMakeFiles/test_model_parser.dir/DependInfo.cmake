
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_model_parser.cpp" "tests/CMakeFiles/test_model_parser.dir/test_model_parser.cpp.o" "gcc" "tests/CMakeFiles/test_model_parser.dir/test_model_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/satom_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/satom_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/satom_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/satom_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/enumerate/CMakeFiles/satom_enumerate.dir/DependInfo.cmake"
  "/root/repo/build/src/litmus/CMakeFiles/satom_litmus.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/satom_model.dir/DependInfo.cmake"
  "/root/repo/build/src/speculation/CMakeFiles/satom_speculation.dir/DependInfo.cmake"
  "/root/repo/build/src/tso/CMakeFiles/satom_tso.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/satom_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/satom_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satom_util.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/satom_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
