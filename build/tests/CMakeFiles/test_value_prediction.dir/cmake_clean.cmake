file(REMOVE_RECURSE
  "CMakeFiles/test_value_prediction.dir/test_value_prediction.cpp.o"
  "CMakeFiles/test_value_prediction.dir/test_value_prediction.cpp.o.d"
  "test_value_prediction"
  "test_value_prediction.pdb"
  "test_value_prediction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
