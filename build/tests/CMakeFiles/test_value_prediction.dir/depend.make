# Empty dependencies file for test_value_prediction.
# This may be replaced when dependencies are built.
