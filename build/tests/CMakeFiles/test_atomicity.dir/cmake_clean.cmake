file(REMOVE_RECURSE
  "CMakeFiles/test_atomicity.dir/test_atomicity.cpp.o"
  "CMakeFiles/test_atomicity.dir/test_atomicity.cpp.o.d"
  "test_atomicity"
  "test_atomicity.pdb"
  "test_atomicity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
