file(REMOVE_RECURSE
  "CMakeFiles/test_rmw.dir/test_rmw.cpp.o"
  "CMakeFiles/test_rmw.dir/test_rmw.cpp.o.d"
  "test_rmw"
  "test_rmw.pdb"
  "test_rmw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
