# Empty compiler generated dependencies file for test_rmw.
# This may be replaced when dependencies are built.
