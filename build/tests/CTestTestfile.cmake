# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitset[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_atomicity[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_enumerate[1]_include.cmake")
include("/root/repo/build/tests/test_litmus[1]_include.cmake")
include("/root/repo/build/tests/test_crossvalidation[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_speculation[1]_include.cmake")
include("/root/repo/build/tests/test_tso[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_rmw[1]_include.cmake")
include("/root/repo/build/tests/test_fences[1]_include.cmake")
include("/root/repo/build/tests/test_txn[1]_include.cmake")
include("/root/repo/build/tests/test_value_prediction[1]_include.cmake")
include("/root/repo/build/tests/test_model_parser[1]_include.cmake")
include("/root/repo/build/tests/test_checker[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_engine_internals[1]_include.cmake")
