# Empty dependencies file for satom_util.
# This may be replaced when dependencies are built.
