file(REMOVE_RECURSE
  "CMakeFiles/satom_util.dir/table.cpp.o"
  "CMakeFiles/satom_util.dir/table.cpp.o.d"
  "libsatom_util.a"
  "libsatom_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
