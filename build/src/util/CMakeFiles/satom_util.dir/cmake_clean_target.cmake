file(REMOVE_RECURSE
  "libsatom_util.a"
)
