file(REMOVE_RECURSE
  "CMakeFiles/satom_litmus.dir/condition.cpp.o"
  "CMakeFiles/satom_litmus.dir/condition.cpp.o.d"
  "CMakeFiles/satom_litmus.dir/library.cpp.o"
  "CMakeFiles/satom_litmus.dir/library.cpp.o.d"
  "CMakeFiles/satom_litmus.dir/parser.cpp.o"
  "CMakeFiles/satom_litmus.dir/parser.cpp.o.d"
  "libsatom_litmus.a"
  "libsatom_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
