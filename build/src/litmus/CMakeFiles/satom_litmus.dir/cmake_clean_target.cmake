file(REMOVE_RECURSE
  "libsatom_litmus.a"
)
