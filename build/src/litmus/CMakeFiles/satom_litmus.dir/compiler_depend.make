# Empty compiler generated dependencies file for satom_litmus.
# This may be replaced when dependencies are built.
