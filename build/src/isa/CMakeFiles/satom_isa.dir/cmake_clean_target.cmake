file(REMOVE_RECURSE
  "libsatom_isa.a"
)
