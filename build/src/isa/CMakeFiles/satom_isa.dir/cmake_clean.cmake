file(REMOVE_RECURSE
  "CMakeFiles/satom_isa.dir/builder.cpp.o"
  "CMakeFiles/satom_isa.dir/builder.cpp.o.d"
  "CMakeFiles/satom_isa.dir/instruction.cpp.o"
  "CMakeFiles/satom_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/satom_isa.dir/program.cpp.o"
  "CMakeFiles/satom_isa.dir/program.cpp.o.d"
  "libsatom_isa.a"
  "libsatom_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
