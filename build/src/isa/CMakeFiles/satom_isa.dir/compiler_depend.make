# Empty compiler generated dependencies file for satom_isa.
# This may be replaced when dependencies are built.
