file(REMOVE_RECURSE
  "CMakeFiles/satom_speculation.dir/report.cpp.o"
  "CMakeFiles/satom_speculation.dir/report.cpp.o.d"
  "libsatom_speculation.a"
  "libsatom_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
