# Empty compiler generated dependencies file for satom_speculation.
# This may be replaced when dependencies are built.
