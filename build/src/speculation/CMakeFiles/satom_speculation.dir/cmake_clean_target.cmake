file(REMOVE_RECURSE
  "libsatom_speculation.a"
)
