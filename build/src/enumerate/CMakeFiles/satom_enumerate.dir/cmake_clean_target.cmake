file(REMOVE_RECURSE
  "libsatom_enumerate.a"
)
