file(REMOVE_RECURSE
  "CMakeFiles/satom_enumerate.dir/behavior.cpp.o"
  "CMakeFiles/satom_enumerate.dir/behavior.cpp.o.d"
  "CMakeFiles/satom_enumerate.dir/engine.cpp.o"
  "CMakeFiles/satom_enumerate.dir/engine.cpp.o.d"
  "CMakeFiles/satom_enumerate.dir/outcome.cpp.o"
  "CMakeFiles/satom_enumerate.dir/outcome.cpp.o.d"
  "libsatom_enumerate.a"
  "libsatom_enumerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_enumerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
