# Empty dependencies file for satom_enumerate.
# This may be replaced when dependencies are built.
