# Empty compiler generated dependencies file for satom_checker.
# This may be replaced when dependencies are built.
