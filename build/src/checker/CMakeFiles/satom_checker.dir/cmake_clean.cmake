file(REMOVE_RECURSE
  "CMakeFiles/satom_checker.dir/checker.cpp.o"
  "CMakeFiles/satom_checker.dir/checker.cpp.o.d"
  "libsatom_checker.a"
  "libsatom_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
