file(REMOVE_RECURSE
  "libsatom_checker.a"
)
