file(REMOVE_RECURSE
  "CMakeFiles/satom_model.dir/models.cpp.o"
  "CMakeFiles/satom_model.dir/models.cpp.o.d"
  "CMakeFiles/satom_model.dir/parser.cpp.o"
  "CMakeFiles/satom_model.dir/parser.cpp.o.d"
  "CMakeFiles/satom_model.dir/reorder_table.cpp.o"
  "CMakeFiles/satom_model.dir/reorder_table.cpp.o.d"
  "libsatom_model.a"
  "libsatom_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
