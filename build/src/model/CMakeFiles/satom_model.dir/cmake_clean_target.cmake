file(REMOVE_RECURSE
  "libsatom_model.a"
)
