# Empty dependencies file for satom_model.
# This may be replaced when dependencies are built.
