
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/models.cpp" "src/model/CMakeFiles/satom_model.dir/models.cpp.o" "gcc" "src/model/CMakeFiles/satom_model.dir/models.cpp.o.d"
  "/root/repo/src/model/parser.cpp" "src/model/CMakeFiles/satom_model.dir/parser.cpp.o" "gcc" "src/model/CMakeFiles/satom_model.dir/parser.cpp.o.d"
  "/root/repo/src/model/reorder_table.cpp" "src/model/CMakeFiles/satom_model.dir/reorder_table.cpp.o" "gcc" "src/model/CMakeFiles/satom_model.dir/reorder_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/satom_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satom_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
