# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("isa")
subdirs("core")
subdirs("model")
subdirs("enumerate")
subdirs("baseline")
subdirs("tso")
subdirs("txn")
subdirs("checker")
subdirs("speculation")
subdirs("coherence")
subdirs("litmus")
subdirs("analysis")
