file(REMOVE_RECURSE
  "libsatom_analysis.a"
)
