file(REMOVE_RECURSE
  "CMakeFiles/satom_analysis.dir/races.cpp.o"
  "CMakeFiles/satom_analysis.dir/races.cpp.o.d"
  "CMakeFiles/satom_analysis.dir/well_sync.cpp.o"
  "CMakeFiles/satom_analysis.dir/well_sync.cpp.o.d"
  "libsatom_analysis.a"
  "libsatom_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
