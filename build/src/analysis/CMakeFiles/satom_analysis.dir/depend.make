# Empty dependencies file for satom_analysis.
# This may be replaced when dependencies are built.
