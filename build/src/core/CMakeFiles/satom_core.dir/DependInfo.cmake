
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/atomicity.cpp" "src/core/CMakeFiles/satom_core.dir/atomicity.cpp.o" "gcc" "src/core/CMakeFiles/satom_core.dir/atomicity.cpp.o.d"
  "/root/repo/src/core/dot.cpp" "src/core/CMakeFiles/satom_core.dir/dot.cpp.o" "gcc" "src/core/CMakeFiles/satom_core.dir/dot.cpp.o.d"
  "/root/repo/src/core/encode.cpp" "src/core/CMakeFiles/satom_core.dir/encode.cpp.o" "gcc" "src/core/CMakeFiles/satom_core.dir/encode.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "src/core/CMakeFiles/satom_core.dir/graph.cpp.o" "gcc" "src/core/CMakeFiles/satom_core.dir/graph.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "src/core/CMakeFiles/satom_core.dir/serialization.cpp.o" "gcc" "src/core/CMakeFiles/satom_core.dir/serialization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/satom_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satom_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
