# Empty compiler generated dependencies file for satom_core.
# This may be replaced when dependencies are built.
