file(REMOVE_RECURSE
  "libsatom_core.a"
)
