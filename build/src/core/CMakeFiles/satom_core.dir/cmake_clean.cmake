file(REMOVE_RECURSE
  "CMakeFiles/satom_core.dir/atomicity.cpp.o"
  "CMakeFiles/satom_core.dir/atomicity.cpp.o.d"
  "CMakeFiles/satom_core.dir/dot.cpp.o"
  "CMakeFiles/satom_core.dir/dot.cpp.o.d"
  "CMakeFiles/satom_core.dir/encode.cpp.o"
  "CMakeFiles/satom_core.dir/encode.cpp.o.d"
  "CMakeFiles/satom_core.dir/graph.cpp.o"
  "CMakeFiles/satom_core.dir/graph.cpp.o.d"
  "CMakeFiles/satom_core.dir/serialization.cpp.o"
  "CMakeFiles/satom_core.dir/serialization.cpp.o.d"
  "libsatom_core.a"
  "libsatom_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
