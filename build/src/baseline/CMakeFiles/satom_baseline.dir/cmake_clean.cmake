file(REMOVE_RECURSE
  "CMakeFiles/satom_baseline.dir/operational.cpp.o"
  "CMakeFiles/satom_baseline.dir/operational.cpp.o.d"
  "libsatom_baseline.a"
  "libsatom_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
