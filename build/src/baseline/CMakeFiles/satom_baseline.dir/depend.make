# Empty dependencies file for satom_baseline.
# This may be replaced when dependencies are built.
