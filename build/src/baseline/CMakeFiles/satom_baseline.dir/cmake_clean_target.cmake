file(REMOVE_RECURSE
  "libsatom_baseline.a"
)
