file(REMOVE_RECURSE
  "CMakeFiles/satom_txn.dir/atomic.cpp.o"
  "CMakeFiles/satom_txn.dir/atomic.cpp.o.d"
  "libsatom_txn.a"
  "libsatom_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
