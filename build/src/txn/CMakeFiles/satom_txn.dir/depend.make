# Empty dependencies file for satom_txn.
# This may be replaced when dependencies are built.
