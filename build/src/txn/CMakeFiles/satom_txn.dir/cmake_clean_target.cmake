file(REMOVE_RECURSE
  "libsatom_txn.a"
)
