file(REMOVE_RECURSE
  "libsatom_coherence.a"
)
