# Empty compiler generated dependencies file for satom_coherence.
# This may be replaced when dependencies are built.
