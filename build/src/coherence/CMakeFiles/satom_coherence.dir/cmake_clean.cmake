file(REMOVE_RECURSE
  "CMakeFiles/satom_coherence.dir/msi.cpp.o"
  "CMakeFiles/satom_coherence.dir/msi.cpp.o.d"
  "libsatom_coherence.a"
  "libsatom_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
