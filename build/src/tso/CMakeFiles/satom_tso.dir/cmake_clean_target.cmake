file(REMOVE_RECURSE
  "libsatom_tso.a"
)
