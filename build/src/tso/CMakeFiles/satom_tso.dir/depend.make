# Empty dependencies file for satom_tso.
# This may be replaced when dependencies are built.
