file(REMOVE_RECURSE
  "CMakeFiles/satom_tso.dir/analysis.cpp.o"
  "CMakeFiles/satom_tso.dir/analysis.cpp.o.d"
  "libsatom_tso.a"
  "libsatom_tso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satom_tso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
