/**
 * @file
 * Experiment FIG1 — the Weak Reordering Axioms table (Figure 1).
 *
 * Prints the reorder table of every bundled model in the layout of the
 * paper's Figure 1 and benchmarks local-order (`≺`) graph construction:
 * the per-model cost of generating and wiring a thread's nodes.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "enumerate/engine.hpp"
#include "isa/builder.hpp"
#include "litmus/library.hpp"
#include "model/models.hpp"

namespace
{

using namespace satom;

/** A single-thread program with every instruction class. */
Program
mixedProgram(int repeats)
{
    ProgramBuilder pb;
    auto &t = pb.thread("P0");
    for (int i = 0; i < repeats; ++i) {
        t.movi(1, i);
        t.store(100 + (i % 4), i);
        t.load(2, 100 + ((i + 1) % 4));
        t.add(3, regOp(1), regOp(2));
        t.fence();
    }
    return pb.build();
}

void
BM_LocalOrderConstruction(benchmark::State &state)
{
    const MemoryModel model =
        makeModel(static_cast<ModelId>(state.range(0)));
    const Program program = mixedProgram(static_cast<int>(state.range(1)));
    EnumerationOptions opts;
    opts.maxDynamicPerThread = 1024;
    for (auto _ : state) {
        auto result = enumerateBehaviors(program, model, opts);
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(model.name);
}

} // namespace

BENCHMARK(BM_LocalOrderConstruction)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {4, 8}});

int
main(int argc, char **argv)
{
    std::cout << "=== FIG1: reordering axiom tables ===\n";
    for (ModelId id : satom::allModels()) {
        const satom::MemoryModel m = satom::makeModel(id);
        std::cout << "--- " << m.name
                  << (m.nonSpecAliasDeps ? "" : "  (aliasing speculation)")
                  << (m.tsoBypass ? "  (local bypass)" : "") << " ---\n"
                  << m.table.render() << '\n';
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
