#!/usr/bin/env bash
# Run the enumeration benches in --json mode and merge their records
# into BENCH_enumerate.json (the checked-in benchmark artifact).
#
# Usage: bench/run_benchmarks.sh [build-dir]
#
# The build dir defaults to ./build and must already contain the bench
# binaries (cmake --build build -j).  Records are a flat array of
# {schema, bench, model, wall_ms, states, outcomes, workers, cache,
# cpus, starved, stats} objects (schema 3: stats is the search's
# deterministic counter object, or null when compiled out; cache is
# "off" | "cold" | "warm", the canonical-result-cache state the
# record was measured under — cold pays canonicalize+enumerate+store,
# warm replays the stored outcome sets); workers=1 is the serial
# engine, higher counts the parallel engine (enumerateBatch across
# the litmus library, frontier waves inside one scaling ring); cpus
# is what the host could actually run in parallel, and starved=true
# marks records whose worker count exceeded it — their wall_ms
# measures scheduling overhead, not speedup.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
out="$repo/BENCH_enumerate.json"

# The benches measure worker counts up to 4; on a smaller host those
# records are starved and say nothing about parallel speedup.
cpus="$(nproc 2>/dev/null || echo 1)"
if [ "$cpus" -lt 4 ]; then
    echo "warning: only $cpus CPU(s) online but the benches measure" \
         "up to 4 workers; starved records (workers > cpus, marked" \
         "\"starved\": true in the JSON) measure scheduling overhead," \
         "not speedup" >&2
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for bench in bench_litmus_matrix bench_scaling bench_kernels; do
    bin="$build/bench/$bench"
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (cmake --build $build -j)" >&2
        exit 1
    fi
    # --benchmark_filter that matches nothing skips the google-benchmark
    # timing phase; the tables and the JSON records still run.
    "$bin" --json "$tmpdir/$bench.json" \
        --benchmark_filter='^$' >/dev/null
done

if command -v jq >/dev/null 2>&1; then
    jq -s 'add' "$tmpdir"/bench_litmus_matrix.json \
        "$tmpdir"/bench_scaling.json \
        "$tmpdir"/bench_kernels.json > "$out"
else
    # Fallback merge: strip the closing/opening brackets between files.
    {
        sed '$d' "$tmpdir/bench_litmus_matrix.json" | sed '$s/$/,/'
        sed '1d' "$tmpdir/bench_scaling.json" | sed '$d' | sed '$s/$/,/'
        sed '1d' "$tmpdir/bench_kernels.json"
    } > "$out"
fi

echo "wrote $out"
