/**
 * @file
 * Experiment TAB-RMW (our Table F) — the atomic read-modify-write
 * extension (Section 8 of the paper).
 *
 * Three checks across models:
 *  - atomicity: N concurrent fetch-adds always sum to N;
 *  - lock semantics: SB built from Swaps is forbidden under TSO (x86
 *    LOCK folklore) but still allowed under the weak model;
 *  - cost: enumeration time for contended RMWs vs. plain Stores.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "isa/builder.hpp"
#include "litmus/library.hpp"

namespace
{

using namespace satom;

constexpr Addr X = 100;

Program
incrementers(int threads, bool atomic)
{
    ProgramBuilder pb;
    for (int t = 0; t < threads; ++t) {
        auto &p = pb.thread("P" + std::to_string(t));
        if (atomic) {
            p.fetchAdd(1, immOp(X), immOp(1));
        } else {
            p.load(1, X).add(2, regOp(1), immOp(1)).store(
                immOp(X), regOp(2));
        }
    }
    return pb.build();
}

void
BM_ContendedFetchAdd(benchmark::State &state)
{
    const Program p =
        incrementers(static_cast<int>(state.range(0)), true);
    for (auto _ : state) {
        auto r = enumerateBehaviors(p, makeModel(ModelId::WMM));
        benchmark::DoNotOptimize(r);
    }
}

void
BM_ContendedPlainIncrement(benchmark::State &state)
{
    const Program p =
        incrementers(static_cast<int>(state.range(0)), false);
    for (auto _ : state) {
        auto r = enumerateBehaviors(p, makeModel(ModelId::WMM));
        benchmark::DoNotOptimize(r);
    }
}

} // namespace

BENCHMARK(BM_ContendedFetchAdd)->DenseRange(2, 4);
BENCHMARK(BM_ContendedPlainIncrement)->DenseRange(2, 3);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    banner("TAB-RMW (Table F)", "atomic read-modify-write extension");

    std::cout << "-- atomicity: N concurrent fetch-adds --\n";
    TextTable t1;
    t1.header({"threads", "model", "final values", "lost updates"});
    for (int n : {2, 3}) {
        for (ModelId id : {ModelId::SC, ModelId::TSO, ModelId::WMM}) {
            const auto r = enumerateBehaviors(incrementers(n, true),
                                              makeModel(id));
            Val lo = 1 << 30, hi = -1;
            for (const auto &o : r.outcomes) {
                lo = std::min(lo, o.mem(X));
                hi = std::max(hi, o.mem(X));
            }
            t1.row({std::to_string(n), toString(id),
                    lo == hi ? std::to_string(lo)
                             : std::to_string(lo) + ".." +
                                   std::to_string(hi),
                    lo == n ? "none" : "YES (BUG)"});
        }
    }
    std::cout << t1.render();

    std::cout << "-- vs. plain load/add/store (races expected) --\n";
    TextTable t2;
    t2.header({"threads", "model", "final values"});
    for (int n : {2, 3}) {
        const auto r = enumerateBehaviors(incrementers(n, false),
                                          makeModel(ModelId::WMM));
        Val lo = 1 << 30, hi = -1;
        for (const auto &o : r.outcomes) {
            lo = std::min(lo, o.mem(X));
            hi = std::max(hi, o.mem(X));
        }
        t2.row({std::to_string(n), "WMM",
                std::to_string(lo) + ".." + std::to_string(hi)});
    }
    std::cout << t2.render();

    std::cout << "-- SB with atomic Swaps --\n";
    const auto sb = litmus::sbRmw();
    TextTable t3;
    t3.header({"model", "r1=0 && r2=0"});
    for (ModelId id : {ModelId::SC, ModelId::TSOApprox, ModelId::TSO,
                       ModelId::PSO, ModelId::WMM}) {
        t3.row({toString(id),
                verdictChecked(observableUnder(sb, id), sb, id)});
    }
    std::cout << t3.render();
    std::cout << "x86 folklore: a LOCKed op in SB restores order; the "
                 "weak model still reorders the Load past the Rmw.\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
