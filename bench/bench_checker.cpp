/**
 * @file
 * Experiment TAB-CHECKER (our Table I) — the post-hoc execution
 * checker (Section 8 "Tools for verifying memory model violations")
 * and the rule-c / TSOtool comparison (Section 7).
 *
 * Three result groups:
 *  1. verdicts for hand-picked traces (valid, coherence-violating,
 *     Figure 3 and Figure 5 forbidden observations) under full and
 *     a+b-only closure;
 *  2. round-trip validation: every enumerated execution of several
 *     litmus tests re-checks as consistent;
 *  3. the online value of rule c: enumeration rollback counts with
 *     and without it (late detection vs. eager candidate pruning).
 */

#include <benchmark/benchmark.h>

#include <set>

#include "bench_util.hpp"
#include "checker/checker.hpp"
#include "litmus/library.hpp"

namespace
{

using namespace satom;

void
BM_CheckValidTrace(benchmark::State &state)
{
    const auto t = litmus::figure5();
    EnumerationOptions opts;
    opts.collectExecutions = true;
    const auto r =
        enumerateBehaviors(t.program, makeModel(ModelId::WMM), opts);
    const auto obs = observationsOf(r.executions.front());
    for (auto _ : state) {
        auto check =
            checkExecution(t.program, makeModel(ModelId::WMM), obs);
        benchmark::DoNotOptimize(check);
    }
}

void
BM_CheckViolatingTrace(benchmark::State &state)
{
    const auto t = litmus::figure5();
    const std::vector<Observation> trace = {
        Observation::of(0, 0, 1, 0), Observation::of(0, 1, 2, 0),
        Observation::of(2, 0, 1, 1), Observation::of(2, 1, 0, 0)};
    for (auto _ : state) {
        auto check =
            checkExecution(t.program, makeModel(ModelId::WMM), trace);
        benchmark::DoNotOptimize(check);
    }
}

} // namespace

BENCHMARK(BM_CheckValidTrace);
BENCHMARK(BM_CheckViolatingTrace);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    banner("TAB-CHECKER (Table I)",
           "post-hoc execution checking and the rule-c comparison");

    std::cout << "-- trace verdicts --\n";
    TextTable t1;
    t1.header({"trace", "model", "a+b only", "a+b+c"});
    {
        const auto sb = litmus::storeBuffering();
        const std::vector<Observation> weak = {
            Observation::initial(0, 0), Observation::initial(1, 0)};
        auto verdict = [&](const Program &p, const MemoryModel &m,
                           const std::vector<Observation> &o,
                           bool ruleC) {
            CheckOptions co;
            co.ruleC = ruleC;
            return checkExecution(p, m, o, co).consistent
                       ? std::string("accept")
                       : std::string("reject");
        };
        t1.row({"SB both-zero", "TSO-approx",
                verdict(sb.program, makeModel(ModelId::TSOApprox),
                        weak, false),
                verdict(sb.program, makeModel(ModelId::TSOApprox),
                        weak, true)});
        t1.row({"SB both-zero", "SC",
                verdict(sb.program, makeModel(ModelId::SC), weak,
                        false),
                verdict(sb.program, makeModel(ModelId::SC), weak,
                        true)});
        const auto f3 = litmus::figure3();
        const std::vector<Observation> f3bad = {
            Observation::of(0, 0, 1, 0), Observation::of(1, 0, 0, 0)};
        t1.row({"fig3 forbidden", "WMM",
                verdict(f3.program, makeModel(ModelId::WMM), f3bad,
                        false),
                verdict(f3.program, makeModel(ModelId::WMM), f3bad,
                        true)});
        const auto f5 = litmus::figure5();
        const std::vector<Observation> f5bad = {
            Observation::of(0, 0, 1, 0), Observation::of(0, 1, 2, 0),
            Observation::of(2, 0, 1, 1), Observation::of(2, 1, 0, 0)};
        t1.row({"fig5 forbidden", "WMM",
                verdict(f5.program, makeModel(ModelId::WMM), f5bad,
                        false),
                verdict(f5.program, makeModel(ModelId::WMM), f5bad,
                        true)});
    }
    std::cout << t1.render();
    std::cout
        << "note: on COMPLETE traces the iterated a+b closure already "
           "rejects fig5 (rule a reconstructs the cycle through the "
           "rule-c premises); see the rollback table for where rule c "
           "is irreplaceable.\n\n";

    std::cout << "-- round-trip: enumerated executions re-check --\n";
    TextTable t2;
    t2.header({"test", "executions", "all consistent"});
    for (const auto &lt :
         {litmus::storeBuffering(), litmus::messagePassing(),
          litmus::iriw(), litmus::figure5(), litmus::figure10()}) {
        EnumerationOptions opts;
        opts.collectExecutions = true;
        const auto r = enumerateBehaviors(
            lt.program, makeModel(ModelId::WMM), opts);
        int ok = 0;
        for (const auto &g : r.executions) {
            const auto check = checkExecution(
                lt.program, makeModel(ModelId::WMM),
                observationsOf(g));
            ok += check.consistent;
        }
        t2.row({lt.name, std::to_string(r.executions.size()),
                ok == static_cast<int>(r.executions.size())
                    ? "yes"
                    : "NO (BUG)"});
    }
    std::cout << t2.render();

    std::cout << "\n-- rule c online: enumeration rollbacks --\n";
    TextTable t3;
    t3.header({"test", "rollbacks with c", "rollbacks a+b only",
               "outcome sets"});
    for (const auto &lt : {litmus::figure5(), litmus::figure3(),
                           litmus::iriwFenced()}) {
        const auto withC =
            enumerateBehaviors(lt.program, makeModel(ModelId::WMM));
        EnumerationOptions ab;
        ab.applyRuleC = false;
        const auto withoutC = enumerateBehaviors(
            lt.program, makeModel(ModelId::WMM), ab);
        std::set<std::string> a, b;
        for (const auto &o : withC.outcomes)
            a.insert(o.key());
        for (const auto &o : withoutC.outcomes)
            b.insert(o.key());
        t3.row({lt.name, std::to_string(withC.stats.rollbacks),
                std::to_string(withoutC.stats.rollbacks),
                a == b ? "equal" : "DIFFER"});
    }
    std::cout << t3.render();
    std::cout << "rule c keeps candidates() exact, so the enumerator "
                 "never forks doomed behaviors (0 rollbacks).\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
