/**
 * @file
 * Experiment FIG4 — Figure 4 of the paper (Store Atomicity rule b).
 *
 * "Observing a Store to y orders the Load before an overwriting
 * Store": L4 observing S3(y,3) inserts L4 @ S5, which makes
 * S1 @ S2 @ L6 and forbids L6 = 1.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "litmus/library.hpp"

namespace
{

using namespace satom;

void
BM_EnumerateFig4(benchmark::State &state)
{
    const auto t = litmus::figure4();
    const MemoryModel m =
        makeModel(static_cast<ModelId>(state.range(0)));
    for (auto _ : state) {
        auto r = enumerateBehaviors(t.program, m);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(m.name);
}

} // namespace

BENCHMARK(BM_EnumerateFig4)->DenseRange(0, 5);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    const auto t = litmus::figure4();
    banner("FIG4", t.description);

    const auto r =
        enumerateBehaviors(t.program, makeModel(ModelId::WMM));
    TextTable table;
    table.header({"observation", "verdict (WMM)"});
    table.row({"L4=3 && L6=1", verdictChecked(
        t.cond.observable(r.outcomes), t, ModelId::WMM)});
    table.row({"L4=3 && L6=2",
               verdict(Condition({Condition::reg(0, 4, 3),
                                  Condition::reg(1, 6, 2)})
                           .observable(r.outcomes))});
    table.row({"L4=5 && L6=1",
               verdict(Condition({Condition::reg(0, 4, 5),
                                  Condition::reg(1, 6, 1)})
                           .observable(r.outcomes))});
    table.row({"L4=5 && L6=2",
               verdict(Condition({Condition::reg(0, 4, 5),
                                  Condition::reg(1, 6, 2)})
                           .observable(r.outcomes))});
    std::cout << table.render();
    std::cout << "paper: L6 = 1 after L4 = 3 must be forbidden; "
              << "observing S5 instead frees L6.\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
