/**
 * @file
 * Experiment TAB-TXN (our Table G) — transactional memory as
 * small-step Store Atomicity (the paper's Section 8 question).
 *
 * Compares four ways to make a counter increment atomic (nothing,
 * fetch-add, TAS lock, transaction) under SC and WMM, reports interval
 * machinery statistics, and cross-checks the transactional enumerator
 * against the atomic-step operational machine.
 */

#include <benchmark/benchmark.h>

#include <set>

#include "baseline/operational.hpp"
#include "bench_util.hpp"
#include "isa/builder.hpp"
#include "txn/atomic.hpp"

namespace
{

using namespace satom;

constexpr Addr X = 100;

Program
txnIncrement(int threads)
{
    ProgramBuilder pb;
    for (int t = 0; t < threads; ++t) {
        pb.thread("P" + std::to_string(t))
            .txBegin()
            .load(1, X)
            .add(2, regOp(1), immOp(1))
            .store(immOp(X), regOp(2))
            .txEnd();
    }
    return pb.build();
}

Program
plainIncrement(int threads)
{
    ProgramBuilder pb;
    for (int t = 0; t < threads; ++t)
        pb.thread("P" + std::to_string(t))
            .load(1, X)
            .add(2, regOp(1), immOp(1))
            .store(immOp(X), regOp(2));
    return pb.build();
}

void
BM_TxnEnumeration(benchmark::State &state)
{
    const Program p = txnIncrement(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto r = enumerateBehaviors(p, makeModel(ModelId::WMM));
        benchmark::DoNotOptimize(r);
    }
}

void
BM_PlainEnumeration(benchmark::State &state)
{
    const Program p = plainIncrement(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto r = enumerateBehaviors(p, makeModel(ModelId::WMM));
        benchmark::DoNotOptimize(r);
    }
}

void
BM_AtomicStepMachine(benchmark::State &state)
{
    const Program p = txnIncrement(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto r = enumerateOperationalSC(p);
        benchmark::DoNotOptimize(r);
    }
}

} // namespace

BENCHMARK(BM_TxnEnumeration)->DenseRange(2, 4);
BENCHMARK(BM_PlainEnumeration)->DenseRange(2, 3);
BENCHMARK(BM_AtomicStepMachine)->DenseRange(2, 4);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    banner("TAB-TXN (Table G)",
           "transactions as intervals of the @ order");

    std::cout << "-- atomicity of N transactional increments --\n";
    TextTable t;
    t.header({"threads", "model", "final counter", "outcomes",
              "txn aborts", "machine agrees"});
    for (int n : {2, 3}) {
        const Program p = txnIncrement(n);
        for (ModelId id : {ModelId::SC, ModelId::WMM}) {
            const auto r = enumerateBehaviors(p, makeModel(id));
            Val lo = 1 << 30, hi = -1;
            for (const auto &o : r.outcomes) {
                lo = std::min(lo, o.mem(X));
                hi = std::max(hi, o.mem(X));
            }
            std::string agrees = "-";
            if (id == ModelId::SC) {
                const auto oper = enumerateOperationalSC(p);
                std::set<std::string> a, b;
                for (const auto &o : r.outcomes)
                    a.insert(o.key());
                for (const auto &o : oper.outcomes)
                    b.insert(o.key());
                agrees = a == b ? "yes" : "NO (BUG)";
            }
            t.row({std::to_string(n), toString(id),
                   lo == hi ? std::to_string(lo)
                            : std::to_string(lo) + ".." +
                                  std::to_string(hi),
                   std::to_string(r.outcomes.size()),
                   std::to_string(r.stats.txnAborts), agrees});
        }
    }
    std::cout << t.render();

    std::cout << "-- unprotected baseline --\n";
    TextTable t2;
    t2.header({"threads", "model", "final counter"});
    for (int n : {2, 3}) {
        const auto r = enumerateBehaviors(plainIncrement(n),
                                          makeModel(ModelId::WMM));
        Val lo = 1 << 30, hi = -1;
        for (const auto &o : r.outcomes) {
            lo = std::min(lo, o.mem(X));
            hi = std::max(hi, o.mem(X));
        }
        t2.row({std::to_string(n), "WMM",
                std::to_string(lo) + ".." + std::to_string(hi)});
    }
    std::cout << t2.render();

    // Every transactional execution admits a contiguous serialization.
    EnumerationOptions opts;
    opts.collectExecutions = true;
    const auto r = enumerateBehaviors(txnIncrement(2),
                                      makeModel(ModelId::WMM), opts);
    int atomicOk = 0;
    for (const auto &g : r.executions)
        atomicOk += atomicSerializationExists(g) ==
                    SerializationStatus::Exists;
    std::cout << "executions with contiguous-transaction "
                 "serializations: "
              << atomicOk << " of " << r.executions.size() << "\n";
    std::cout << "paper (Section 8): big-step atomicity = interval "
                 "closure over the small-step graph.\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
