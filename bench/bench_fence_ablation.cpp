/**
 * @file
 * Experiment TAB-FENCE (our Table E) — partial-fence ablation.
 *
 * The framework is "parameterized by a set of reordering rules"
 * (Section 8); partial fences let a program re-introduce exactly one
 * ordering at a time.  For each classic relaxation this table shows
 * which single membar bit forbids it under the weak model — and that
 * the other bits do not.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "isa/builder.hpp"

namespace
{

using namespace satom;

constexpr Addr X = 100, Y = 101;

/** The relaxation shapes, each with a fence slot per thread. */
struct Shape
{
    const char *name;
    const char *needs; ///< the bit that should forbid the outcome
    Program (*build)(FenceMask);
    Condition cond;
};

Program
buildSb(FenceMask m)
{
    ProgramBuilder pb;
    pb.thread("P0").store(X, 1).fence(m).load(1, Y);
    pb.thread("P1").store(Y, 1).fence(m).load(2, X);
    return pb.build();
}

Program
buildMpWriter(FenceMask m)
{
    ProgramBuilder pb;
    pb.thread("P0").store(X, 1).fence(m).store(Y, 1);
    pb.thread("P1").load(1, Y).fence({true, false, false, false})
        .load(2, X);
    return pb.build();
}

Program
buildMpReader(FenceMask m)
{
    ProgramBuilder pb;
    pb.thread("P0").store(X, 1).fence({false, false, false, true})
        .store(Y, 1);
    pb.thread("P1").load(1, Y).fence(m).load(2, X);
    return pb.build();
}

Program
buildLb(FenceMask m)
{
    ProgramBuilder pb;
    pb.thread("P0").load(1, X).fence(m).store(Y, 1);
    pb.thread("P1").load(2, Y).fence(m).store(X, 1);
    return pb.build();
}

std::vector<Shape>
shapes()
{
    return {
        {"SB", "sl", buildSb,
         Condition({Condition::reg(0, 1, 0), Condition::reg(1, 2, 0)})},
        {"MP(writer slot)", "ss", buildMpWriter,
         Condition({Condition::reg(1, 1, 1), Condition::reg(1, 2, 0)})},
        {"MP(reader slot)", "ll", buildMpReader,
         Condition({Condition::reg(1, 1, 1), Condition::reg(1, 2, 0)})},
        {"LB", "ls", buildLb,
         Condition({Condition::reg(0, 1, 1), Condition::reg(1, 2, 1)})},
    };
}

void
BM_FenceAblation(benchmark::State &state)
{
    const auto all = shapes();
    const auto &s = all[static_cast<std::size_t>(state.range(0))];
    const Program p = s.build(FenceMask::full());
    for (auto _ : state) {
        auto r = enumerateBehaviors(p, makeModel(ModelId::WMM));
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(s.name);
}

} // namespace

BENCHMARK(BM_FenceAblation)->DenseRange(0, 3);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    banner("TAB-FENCE (Table E)",
           "which membar bit forbids which relaxation (WMM)");

    const FenceMask bits[] = {
        {true, false, false, false},  // ll
        {false, true, false, false},  // ls
        {false, false, true, false},  // sl
        {false, false, false, true},  // ss
    };
    const char *bitNames[] = {"ll", "ls", "sl", "ss"};

    TextTable t;
    t.header({"shape", "none", "ll", "ls", "sl", "ss", "full",
              "needs"});
    for (const auto &s : shapes()) {
        std::vector<std::string> row{s.name};
        auto verdictFor = [&](FenceMask m) {
            const auto r = enumerateBehaviors(
                s.build(m), satom::makeModel(satom::ModelId::WMM));
            return s.cond.observable(r.outcomes) ? "allowed"
                                                 : "forbidden";
        };
        row.push_back(verdictFor(FenceMask{}));
        for (int i = 0; i < 4; ++i)
            row.push_back(verdictFor(bits[i]));
        row.push_back(verdictFor(FenceMask::full()));
        row.push_back(s.needs);
        t.row(std::move(row));
        (void)bitNames;
    }
    std::cout << t.render();
    std::cout << "each shape flips to forbidden exactly at its "
                 "\"needs\" bit (and stays forbidden with the full "
                 "fence).\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
