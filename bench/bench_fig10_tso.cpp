/**
 * @file
 * Experiment FIG10/11 — TSO as a non-atomic model (Section 6,
 * Figures 10 and 11).
 *
 * The paper's three-way comparison:
 *  - "With Aggressive Reordering" (our WMM): the execution is allowed;
 *  - "Naive TSO" (Store->Load relaxation, store-atomic): inconsistent,
 *    so the outcome is forbidden — simple reordering rules cannot
 *    capture TSO;
 *  - "TSO with correct bypass" (grey edges): allowed, and diagnosed as
 *    violating memory atomicity (not strictly serializable).
 */

#include <benchmark/benchmark.h>

#include "baseline/operational.hpp"
#include "bench_util.hpp"
#include "litmus/library.hpp"
#include "tso/analysis.hpp"

namespace
{

using namespace satom;

void
BM_EnumerateFig10(benchmark::State &state)
{
    const auto t = litmus::figure10();
    const MemoryModel m =
        makeModel(static_cast<ModelId>(state.range(0)));
    for (auto _ : state) {
        auto r = enumerateBehaviors(t.program, m);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(m.name);
}

void
BM_StoreBufferMachineFig10(benchmark::State &state)
{
    const auto t = litmus::figure10();
    for (auto _ : state) {
        auto r = enumerateOperationalTSO(t.program);
        benchmark::DoNotOptimize(r);
    }
}

} // namespace

BENCHMARK(BM_EnumerateFig10)->DenseRange(0, 5);
BENCHMARK(BM_StoreBufferMachineFig10);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    const auto t = litmus::figure10();
    banner("FIG10/11", t.description);

    TextTable table;
    table.header({"model (Figure 11 panel)", "L4=3,L6=5,L9=8,L10=1"});
    table.row({"WMM  (aggressive reordering)",
               verdictChecked(observableUnder(t, ModelId::WMM), t,
                              ModelId::WMM)});
    table.row({"TSO-approx  (naive TSO)",
               verdictChecked(observableUnder(t, ModelId::TSOApprox),
                              t, ModelId::TSOApprox)});
    table.row({"TSO  (correct bypass)",
               verdictChecked(observableUnder(t, ModelId::TSO), t,
                              ModelId::TSO)});
    const auto oper = enumerateOperationalTSO(t.program);
    table.row({"store-buffer machine (reference)",
               verdict(t.cond.observable(oper.outcomes))});
    std::cout << table.render();

    // Diagnose the paper's execution.
    EnumerationOptions opts;
    opts.collectExecutions = true;
    const auto r =
        enumerateBehaviors(t.program, makeModel(ModelId::TSO), opts);
    int nonAtomic = 0, analyzed = 0;
    for (const auto &g : r.executions) {
        const auto rep = analyzeTsoExecution(g);
        ++analyzed;
        if (rep.violatesMemoryAtomicity())
            ++nonAtomic;
    }
    std::cout << "TSO executions analyzed: " << analyzed
              << ", violating memory atomicity (need the bypass to "
                 "serialize): "
              << nonAtomic << "\n";
    std::cout << "paper: naive reordering forbids the execution; the "
                 "bypass admits it and it is non-atomic.\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
