/**
 * @file
 * Checkpoint-format throughput: what one engine snapshot costs to
 * encode, decode and persist, so the checkpoint cadence
 * (--checkpoint-every) can be chosen against real numbers.
 *
 * The snapshot is not synthetic: a state-capped enumeration of a
 * store-buffering ring checkpoints through the production path
 * (writeEngineSnapshot) and the captured file — real frontier
 * behaviors, dedup keys, outcomes — is the corpus every benchmark
 * here round-trips.  CRC32 is measured separately since it bounds
 * every other number.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.hpp"
#include "enumerate/frontier_store.hpp"
#include "isa/builder.hpp"
#include "util/snapshot.hpp"

namespace
{

using namespace satom;

/** t threads; thread i stores to its slot then reads the others. */
Program
ring(int threads, int reads)
{
    ProgramBuilder pb;
    for (int i = 0; i < threads; ++i) {
        auto &t = pb.thread("P" + std::to_string(i));
        t.store(100 + i, i + 1);
        for (int r = 1; r <= reads; ++r)
            t.load(r, 100 + (i + r) % threads);
    }
    return pb.build();
}

struct Corpus
{
    EngineSnapshot snap;
    std::string fingerprint;
    std::string bytes; ///< the encoded stream
};

/** Capture a mid-run snapshot through the production checkpoint path. */
Corpus
capture(long maxStates)
{
    // ring(3,3) explores far more than 2000 states, so every cap used
    // below truncates and the on-truncation checkpoint always fires.
    const Program p = ring(3, 3);
    const MemoryModel m = makeModel(ModelId::WMM);
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("satom_bench_snapshot_" + std::to_string(maxStates) +
          ".snap"))
            .string();
    EnumerationOptions opts;
    opts.maxStates = maxStates;
    opts.checkpointPath = path;
    enumerateBehaviors(p, m, opts);

    Corpus c;
    c.fingerprint = enumerationFingerprint(p, m, opts);
    const auto st = readEngineSnapshot(path, c.fingerprint, c.snap);
    std::remove(path.c_str());
    if (!st.ok()) {
        std::fprintf(stderr, "capture failed: %s\n",
                     snapshot::toString(st.error));
        std::abort();
    }
    c.bytes = encodeEngineSnapshot(c.snap, c.fingerprint);
    return c;
}

const Corpus &
corpus(long maxStates)
{
    static Corpus small = capture(200);
    static Corpus large = capture(2000);
    return maxStates <= 200 ? small : large;
}

void
BM_EncodeSnapshot(benchmark::State &state)
{
    const Corpus &c = corpus(state.range(0));
    for (auto _ : state) {
        auto bytes = encodeEngineSnapshot(c.snap, c.fingerprint);
        benchmark::DoNotOptimize(bytes);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(c.bytes.size()));
    state.counters["frontier"] =
        static_cast<double>(c.snap.frontier.size());
    state.counters["stream_bytes"] =
        static_cast<double>(c.bytes.size());
}

void
BM_DecodeSnapshot(benchmark::State &state)
{
    const Corpus &c = corpus(state.range(0));
    for (auto _ : state) {
        EngineSnapshot snap;
        const auto st =
            decodeEngineSnapshot(c.bytes, c.fingerprint, snap);
        benchmark::DoNotOptimize(st);
        benchmark::DoNotOptimize(snap);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(c.bytes.size()));
}

void
BM_WriteSnapshotToDisk(benchmark::State &state)
{
    const Corpus &c = corpus(state.range(0));
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "satom_bench_snapshot_write.snap")
            .string();
    for (auto _ : state) {
        const auto st =
            writeEngineSnapshot(path, c.snap, c.fingerprint);
        benchmark::DoNotOptimize(st);
    }
    std::remove(path.c_str());
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(c.bytes.size()));
}

void
BM_Crc32(benchmark::State &state)
{
    const std::string buf(
        static_cast<std::size_t>(state.range(0)), 'x');
    for (auto _ : state) {
        const auto c = snapshot::crc32(buf.data(), buf.size());
        benchmark::DoNotOptimize(c);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(buf.size()));
}

} // namespace

BENCHMARK(BM_EncodeSnapshot)
    ->Arg(200)
    ->Arg(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecodeSnapshot)
    ->Arg(200)
    ->Arg(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WriteSnapshotToDisk)
    ->Arg(200)
    ->Arg(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Crc32)->Arg(1 << 10)->Arg(1 << 20);

int
main(int argc, char **argv)
{
    satom::bench::banner("SNAPSHOT",
                         "checkpoint encode/decode/persist cost");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
