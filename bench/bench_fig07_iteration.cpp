/**
 * @file
 * Experiment FIG7 — Figure 7 of the paper: enforcing Store Atomicity
 * on one location can expose required dependencies on another, so the
 * closure must iterate to a fixpoint.
 *
 * Prints the verdicts (final x = 1 forbidden once both observations
 * are made) and measures closure iteration counts across the litmus
 * library under WMM.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "litmus/library.hpp"

namespace
{

using namespace satom;

void
BM_EnumerateFig7(benchmark::State &state)
{
    const auto t = litmus::figure7();
    const MemoryModel m =
        makeModel(static_cast<ModelId>(state.range(0)));
    for (auto _ : state) {
        auto r = enumerateBehaviors(t.program, m);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(m.name);
}

} // namespace

BENCHMARK(BM_EnumerateFig7)->DenseRange(0, 5);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    const auto t = litmus::figure7();
    banner("FIG7", t.description);

    const auto r =
        enumerateBehaviors(t.program, makeModel(ModelId::WMM));
    TextTable table;
    table.header({"observation", "verdict (WMM)"});
    table.row({"L6=4 && L5=2 && final x=1", verdictChecked(
        t.cond.observable(r.outcomes), t, ModelId::WMM)});
    table.row({"L6=4 && L5=2 && final x=2",
               verdict(Condition({Condition::reg(0, 6, 4),
                                  Condition::reg(1, 5, 2),
                                  Condition::mem(litmus::locX, 2)})
                           .observable(r.outcomes))});
    table.row({"L6=3 && L5=2 && final x=1",
               verdict(Condition({Condition::reg(0, 6, 3),
                                  Condition::reg(1, 5, 2),
                                  Condition::mem(litmus::locX, 1)})
                           .observable(r.outcomes))});
    std::cout << table.render();
    std::cout << "closure sweeps during enumeration: "
              << r.stats.closureIterations << " (edges derived: "
              << r.stats.closureEdges << ")\n";

    std::cout << "\ncloure iteration profile across the library "
                 "(WMM):\n";
    TextTable prof;
    prof.header({"test", "sweeps", "derived edges", "states"});
    for (const auto &lt : litmus::classicTests()) {
        const auto lr =
            enumerateBehaviors(lt.program, makeModel(ModelId::WMM));
        prof.row({lt.name, std::to_string(lr.stats.closureIterations),
                  std::to_string(lr.stats.closureEdges),
                  std::to_string(lr.stats.statesExplored)});
    }
    std::cout << prof.render();

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
