/**
 * @file
 * Experiment TAB-SCALE (our Table B) — enumeration cost versus
 * program size.
 *
 * Sweeps synthetic store-buffering chains (t threads, each storing
 * then loading k locations) and reports behaviors found, states
 * explored, duplicate hit rate and closure work, under SC and WMM.
 * The duplicate rate shows how much the Load-Store-graph pruning of
 * Section 4.1 saves.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>

#include "bench_util.hpp"
#include "cache/result_cache.hpp"
#include "isa/builder.hpp"
#include "json_out.hpp"

namespace
{

using namespace satom;

/** t threads; thread i stores to its slot then reads t-1 others. */
Program
ring(int threads, int reads)
{
    ProgramBuilder pb;
    for (int i = 0; i < threads; ++i) {
        auto &t = pb.thread("P" + std::to_string(i));
        t.store(100 + i, i + 1);
        for (int r = 1; r <= reads; ++r)
            t.load(r, 100 + (i + r) % threads);
    }
    return pb.build();
}

void
BM_EnumerateRing(benchmark::State &state)
{
    const Program p = ring(static_cast<int>(state.range(0)),
                           static_cast<int>(state.range(1)));
    const MemoryModel m =
        makeModel(static_cast<ModelId>(state.range(2)));
    for (auto _ : state) {
        auto r = enumerateBehaviors(p, m);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(m.name);
}

/**
 * One record per (ring size, model, worker count): wall time, states
 * and outcomes for a single enumeration of that ring.
 */
void
emitJson(const std::string &path)
{
    using namespace satom::bench;
    JsonWriter out;
    for (int threads : {2, 3, 4}) {
        for (int reads : {1, 2}) {
            if (threads == 4 && reads == 2)
                continue; // keep runtime bounded
            const Program p = ring(threads, reads);
            const std::string bench = "scaling/t" +
                                      std::to_string(threads) + "r" +
                                      std::to_string(reads);
            for (ModelId id : {ModelId::SC, ModelId::WMM}) {
                const MemoryModel m = makeModel(id);
                for (int workers : {1, 2, 4}) {
                    EnumerationOptions opts;
                    opts.numWorkers = workers;
                    const auto t0 = std::chrono::steady_clock::now();
                    const auto r = enumerateBehaviors(p, m, opts);
                    const double ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    out.add({bench, m.name, ms,
                             r.stats.statesExplored,
                             static_cast<long>(r.outcomes.size()),
                             workers, r.registry.json()});
                }
            }
        }
    }
    // A 40-node ring (5 threads x (1 store + 7 loads)), state-capped:
    // large enough that closure cost dominates, so the record's
    // closure-iterations / closure-runs ratio exposes whether the
    // incremental frontier is working (~1.0) or every close is
    // re-sweeping (>> 1).  See EXPERIMENTS.md "Incremental closure".
    {
        const Program p = ring(5, 7);
        for (ModelId id : {ModelId::SC, ModelId::WMM}) {
            const MemoryModel m = makeModel(id);
            EnumerationOptions opts;
            opts.numWorkers = 1;
            opts.maxStates = 3000;
            const auto t0 = std::chrono::steady_clock::now();
            const auto r = enumerateBehaviors(p, m, opts);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            out.add({"scaling/t5r7-capped", m.name, ms,
                     r.stats.statesExplored,
                     static_cast<long>(r.outcomes.size()), 1,
                     r.registry.json()});
        }
    }
    // Capped-vs-uncapped seen set on the t5r7/WMM state-capped ring
    // (the EXPERIMENTS.md out-of-core dedup recipe): the capped
    // record bounds the in-RAM hot tier to 512 keys — everything
    // beyond it pages to disk — and must report the identical states
    // and outcomes; its stats object carries seen-pages /
    // seen-evictions (the RAM bound doing work) and bloom-hits /
    // bloom-misses (the page-probe filter rate).
    {
        const Program p = ring(5, 7);
        const MemoryModel m = makeModel(ModelId::WMM);
        const auto pageDir =
            std::filesystem::temp_directory_path() /
            "satom_bench_seen_pages";
        std::filesystem::create_directories(pageDir);
        for (const bool capped : {false, true}) {
            EnumerationOptions opts;
            opts.numWorkers = 1;
            opts.maxStates = 3000;
            if (capped) {
                opts.spillDir = pageDir.string();
                opts.seenLimit = 512;
            }
            const auto t0 = std::chrono::steady_clock::now();
            const auto r = enumerateBehaviors(p, m, opts);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            out.add({std::string("scaling/t5r7-seen-") +
                         (capped ? "capped" : "uncapped"),
                     m.name, ms, r.stats.statesExplored,
                     static_cast<long>(r.outcomes.size()), 1,
                     r.registry.fullJson()});
        }
        std::filesystem::remove_all(pageDir);
    }
    // Cold-vs-warm canonical result cache on the t3r2/WMM ring (the
    // EXPERIMENTS.md dup-rate recipe): the cold record pays one
    // canonicalize + enumerate + insert, the warm record replays the
    // stored outcome set — the wall_ms gap is the per-program price
    // of never enumerating the same program twice.
    {
        const Program p = ring(3, 2);
        const MemoryModel m = makeModel(ModelId::WMM);
        cache::ResultCache rc; // in-memory, no directory attached
        EnumerationOptions opts;
        opts.numWorkers = 1;
        opts.resultCache = &rc;
        for (const char *phase : {"cold", "warm"}) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto r = enumerateBehaviors(p, m, opts);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            out.add({"scaling/t3r2", m.name, ms,
                     r.stats.statesExplored,
                     static_cast<long>(r.outcomes.size()), 1,
                     r.registry.json(), phase});
        }
    }
    if (!out.writeTo(path))
        std::cerr << "cannot write " << path << "\n";
    else
        std::cout << "wrote " << path << "\n";
}

} // namespace

BENCHMARK(BM_EnumerateRing)
    ->ArgsProduct({{2, 3}, {1, 2}, {0, 4}})
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    const std::string jsonPath = extractJsonPath(argc, argv);
    banner("TAB-SCALE (Table B)", "enumeration cost vs program size");

    TextTable t;
    t.header({"threads", "reads", "model", "instrs", "outcomes",
              "executions", "states", "forks", "dup rate %",
              "closure edges"});
    for (int threads : {2, 3, 4}) {
        for (int reads : {1, 2}) {
            if (threads == 4 && reads == 2)
                continue; // keep runtime bounded
            const Program p = ring(threads, reads);
            for (ModelId id : {ModelId::SC, ModelId::WMM}) {
                const auto r = enumerateBehaviors(p, makeModel(id));
                const double dup =
                    r.stats.statesForked
                        ? 100.0 * static_cast<double>(
                                      r.stats.duplicates) /
                              static_cast<double>(r.stats.statesForked)
                        : 0.0;
                t.row({std::to_string(threads), std::to_string(reads),
                       toString(id), std::to_string(p.size()),
                       std::to_string(r.outcomes.size()),
                       std::to_string(r.stats.executions),
                       std::to_string(r.stats.statesExplored),
                       std::to_string(r.stats.statesForked),
                       std::to_string(static_cast<int>(dup)),
                       std::to_string(r.stats.closureEdges)});
            }
        }
    }
    std::cout << t.render();
    std::cout << "note: dup rate is the fraction of forks pruned by "
                 "the Load-Store-graph comparison of Section 4.1.\n";

    if (!jsonPath.empty())
        emitJson(jsonPath);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
