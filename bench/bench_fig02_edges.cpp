/**
 * @file
 * Experiment FIG2 — the three edge kinds of Figure 2 (plus the TSO
 * grey edge of Section 6).
 *
 * Reports, per litmus test, how many Local / Source / Atomicity / Grey
 * edges appear across all executions under WMM (and TSO for grey), and
 * benchmarks incremental edge insertion with closure maintenance.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "litmus/library.hpp"

namespace
{

using namespace satom;

void
BM_EdgeInsertionWithClosure(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        ExecutionGraph g;
        for (int i = 0; i < n; ++i) {
            Node node;
            node.kind = NodeKind::Store;
            node.addrKnown = true;
            node.addr = i % 4;
            node.valueKnown = true;
            node.value = i;
            node.executed = true;
            g.addNode(node);
        }
        // A chain plus cross links: worst-ish case closure updates.
        for (int i = 0; i + 1 < n; ++i)
            g.addEdge(i, i + 1, EdgeKind::Local);
        for (int i = 0; i + 7 < n; i += 3)
            g.addEdge(i, i + 7, EdgeKind::Atomicity);
        benchmark::DoNotOptimize(g.closureSize());
    }
    state.SetComplexityN(n);
}

} // namespace

BENCHMARK(BM_EdgeInsertionWithClosure)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    banner("FIG2", "edge kinds across the litmus library");

    satom::TextTable t;
    t.header({"test", "execs", "local", "source", "atomicity",
              "grey(TSO)"});
    for (const auto &lt : satom::litmus::classicTests()) {
        satom::EnumerationOptions opts;
        opts.collectExecutions = true;
        const auto wmm = satom::enumerateBehaviors(
            lt.program, satom::makeModel(satom::ModelId::WMM), opts);
        const auto tso = satom::enumerateBehaviors(
            lt.program, satom::makeModel(satom::ModelId::TSO), opts);
        long local = 0, source = 0, atomicity = 0, grey = 0;
        for (const auto &g : wmm.executions) {
            local += g.edgeCount(satom::EdgeKind::Local);
            source += g.edgeCount(satom::EdgeKind::Source);
            atomicity += g.edgeCount(satom::EdgeKind::Atomicity);
        }
        for (const auto &g : tso.executions)
            grey += g.edgeCount(satom::EdgeKind::Grey);
        t.row({lt.name, std::to_string(wmm.executions.size()),
               std::to_string(local), std::to_string(source),
               std::to_string(atomicity), std::to_string(grey)});
    }
    std::cout << t.render();

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
