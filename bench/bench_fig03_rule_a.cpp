/**
 * @file
 * Experiment FIG3 — Figure 3 of the paper (Store Atomicity rule a).
 *
 * "When a Store to y is observed to have been overwritten, the stores
 * must be ordered": observing S3(y,3) at L5 inserts S2 @ S3, which
 * makes S1 @ S4 @ L6 and forbids L6 = 1.
 *
 * The bench prints the verdict for the forbidden observation and for
 * the paper's explicitly-allowed alternatives, then times the
 * enumeration under every model.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "litmus/library.hpp"

namespace
{

using namespace satom;

void
BM_EnumerateFig3(benchmark::State &state)
{
    const auto t = litmus::figure3();
    const MemoryModel m =
        makeModel(static_cast<ModelId>(state.range(0)));
    for (auto _ : state) {
        auto r = enumerateBehaviors(t.program, m);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(m.name);
}

} // namespace

BENCHMARK(BM_EnumerateFig3)->DenseRange(0, 5);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    const auto t = litmus::figure3();
    banner("FIG3", t.description);

    const auto r =
        enumerateBehaviors(t.program, makeModel(ModelId::WMM));
    TextTable table;
    table.header({"observation", "verdict (WMM)"});
    table.row({"L5=3 && L6=1", verdictChecked(
        t.cond.observable(r.outcomes), t, ModelId::WMM)});
    table.row({"L5=3 && L6=4",
               verdict(Condition({Condition::reg(0, 5, 3),
                                  Condition::reg(1, 6, 4)})
                           .observable(r.outcomes))});
    table.row({"L5=2 && L6=1",
               verdict(Condition({Condition::reg(0, 5, 2),
                                  Condition::reg(1, 6, 1)})
                           .observable(r.outcomes))});
    table.row({"L5=2 && L6=4",
               verdict(Condition({Condition::reg(0, 5, 2),
                                  Condition::reg(1, 6, 4)})
                           .observable(r.outcomes))});
    std::cout << table.render();
    std::cout << "paper: L6 = 1 after L5 = 3 must be forbidden; "
              << "the alternatives stay allowed.\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
