/**
 * @file
 * Experiment TAB-VSPEC (our Table H) — value speculation and the
 * safe/unsafe boundary (Sections 5 and 7 of the paper).
 *
 * The paper: "Martin, Sorin, Cain, Hill, and Lipasti show that naive
 * value speculation violates sequential consistency" and "it is not
 * well-understood how to determine when speculation violates a relaxed
 * memory model".  The framework answers by construction:
 *
 *  - prediction whose dependents remain `@`-ordered after the Load is
 *    SAFE: the self-justifying Store is always `@`-after the Load, so
 *    candidates() can never choose it; behavior sets are unchanged;
 *  - prediction forwarded without ordering (Grey dependencies) is
 *    UNSAFE: the classic out-of-thin-air value appears in LB+data.
 */

#include <benchmark/benchmark.h>

#include <set>

#include "bench_util.hpp"
#include "isa/builder.hpp"

namespace
{

using namespace satom;

constexpr Addr X = 100, Y = 101;
constexpr Val thinAir = 42;

Program
lbData()
{
    ProgramBuilder pb;
    pb.thread("P0").load(1, X).store(immOp(Y), regOp(1));
    pb.thread("P1").load(2, Y).store(immOp(X), regOp(2));
    return pb.build();
}

EnumerationOptions
predictionOpts(bool tracked)
{
    EnumerationOptions o;
    o.valuePrediction = true;
    o.trackPredictionDeps = tracked;
    o.predictionValues = {thinAir};
    return o;
}

void
BM_NoPrediction(benchmark::State &state)
{
    const Program p = lbData();
    for (auto _ : state) {
        auto r = enumerateBehaviors(p, makeModel(ModelId::WMM));
        benchmark::DoNotOptimize(r);
    }
}

void
BM_TrackedPrediction(benchmark::State &state)
{
    const Program p = lbData();
    for (auto _ : state) {
        auto r = enumerateBehaviors(p, makeModel(ModelId::WMM),
                                    predictionOpts(true));
        benchmark::DoNotOptimize(r);
    }
}

void
BM_UntrackedPrediction(benchmark::State &state)
{
    const Program p = lbData();
    for (auto _ : state) {
        auto r = enumerateBehaviors(p, makeModel(ModelId::WMM),
                                    predictionOpts(false));
        benchmark::DoNotOptimize(r);
    }
}

} // namespace

BENCHMARK(BM_NoPrediction);
BENCHMARK(BM_TrackedPrediction);
BENCHMARK(BM_UntrackedPrediction);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    banner("TAB-VSPEC (Table H)",
           "value prediction: the safe/unsafe boundary on LB+data");

    const Program p = lbData();
    TextTable t;
    t.header({"mode", "outcomes", "thin-air (42) seen", "rollbacks",
              "behavior set"});
    const auto plain = enumerateBehaviors(p, makeModel(ModelId::WMM));
    std::set<std::string> plainKeys;
    for (const auto &o : plain.outcomes)
        plainKeys.insert(o.key());

    auto emit = [&](const char *name, const EnumerationResult &r) {
        bool thin = false;
        for (const auto &o : r.outcomes)
            if (o.reg(0, 1) == thinAir || o.reg(1, 2) == thinAir)
                thin = true;
        std::set<std::string> ks;
        for (const auto &o : r.outcomes)
            ks.insert(o.key());
        t.row({name, std::to_string(r.outcomes.size()),
               thin ? "YES" : "no",
               std::to_string(r.stats.rollbacks),
               ks == plainKeys ? "unchanged" : "CHANGED"});
    };
    emit("no prediction", plain);
    emit("tracked prediction (safe)",
         enumerateBehaviors(p, makeModel(ModelId::WMM),
                            predictionOpts(true)));
    emit("untracked forwarding (unsafe)",
         enumerateBehaviors(p, makeModel(ModelId::WMM),
                            predictionOpts(false)));
    std::cout << t.render();
    std::cout
        << "paper (Sections 5/7): naive value prediction must admit "
           "the out-of-thin-air result; prediction that keeps the "
           "dependency order must not.\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
