/**
 * @file
 * Throughput of the dispatched SIMD kernels (src/util/kernels.hpp),
 * per kernel x word count x tier.
 *
 * The google-benchmark section reports bytes/second for each
 * combination the host can execute (SetBytesProcessed, so the tables
 * show GB/s directly).  The --json section emits schema-2 records
 * compatible with BENCH_enumerate.json:
 *
 *   bench   "kernels/<kernel>/w<words>"
 *   model   the kernel tier ("scalar", "sse2", "avx2")
 *   wall_ms wall time of the measured rep loop
 *   states  total bytes the loop processed (so GB/s =
 *           states / wall_ms / 1e6)
 *   outcomes rep count
 *   workers 1 (kernels are single-threaded primitives)
 *   stats   null
 *
 * Buffers are offset one word from their allocation so the measured
 * pointers are 8-byte- but not 32-byte-aligned — the alignment the
 * closure rows actually have inside std::vector.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "json_out.hpp"
#include "util/kernels.hpp"

namespace
{

using satom::kern::KernelTable;
using satom::kern::Tier;

std::vector<Tier>
supportedTiers()
{
    std::vector<Tier> out{Tier::Scalar};
    if (satom::kern::bestSupportedTier() >= Tier::Sse2)
        out.push_back(Tier::Sse2);
    if (satom::kern::bestSupportedTier() >= Tier::Avx2)
        out.push_back(Tier::Avx2);
    return out;
}

/** Deterministic pseudo-random buffer with one word of slack. */
std::vector<std::uint64_t>
fill(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<std::uint64_t> v(n + 1);
    for (auto &w : v)
        w = rng();
    return v;
}

constexpr std::size_t kWordCounts[] = {8, 64, 512, 4096};

enum KernelId
{
    OrInto,
    AndInto,
    AnyAnd,
    Popcount,
    Premix,
    FindU64,
    NumKernels
};

const char *const kKernelNames[NumKernels] = {
    "orInto", "andInto", "anyAnd", "popcount", "premix", "findU64"};

/**
 * One pass of kernel @p id over @p n words; returns bytes touched.
 * The probed key for findU64 is absent, so it scans the whole group.
 */
std::size_t
runKernel(const KernelTable &k, KernelId id, std::uint64_t *dst,
          const std::uint64_t *src, std::size_t n)
{
    switch (id) {
    case OrInto:
        k.orInto(dst, src, n);
        return 16 * n;
    case AndInto:
        k.andInto(dst, src, n);
        return 16 * n;
    case AnyAnd:
        benchmark::DoNotOptimize(k.anyAnd(dst, src, n));
        return 16 * n;
    case Popcount:
        benchmark::DoNotOptimize(k.popcount(src, n));
        return 8 * n;
    case Premix:
        k.premix(dst, src, n);
        return 16 * n;
    case FindU64:
        benchmark::DoNotOptimize(k.findU64(src, n, 1));
        return 8 * n;
    default:
        return 0;
    }
}

void
BM_Kernel(benchmark::State &state)
{
    const auto id = static_cast<KernelId>(state.range(0));
    const std::size_t n = static_cast<std::size_t>(state.range(1));
    const auto tier = static_cast<Tier>(state.range(2));
    if (tier > satom::kern::bestSupportedTier()) {
        state.SkipWithError("tier not supported by this host");
        return;
    }
    const KernelTable &k = satom::kern::tableFor(tier);
    auto a = fill(n, 1), b = fill(n, 2);
    std::size_t bytes = 0;
    for (auto _ : state)
        bytes += runKernel(k, id, a.data() + 1, b.data() + 1, n);
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
    state.SetLabel(std::string(kKernelNames[id]) + "/" +
                   satom::kern::tierName(tier));
}

/** Schema-2 records: one per kernel x size x supported tier. */
void
emitJson(const std::string &path)
{
    using namespace satom::bench;
    JsonWriter out;
    for (int id = 0; id < NumKernels; ++id) {
        for (const std::size_t n : kWordCounts) {
            auto a = fill(n, 1), b = fill(n, 2);
            for (const Tier tier : supportedTiers()) {
                const KernelTable &k = satom::kern::tableFor(tier);
                // Calibrate rep count to ~2ms of work.
                long reps = 1;
                for (;;) {
                    const auto t0 = std::chrono::steady_clock::now();
                    for (long r = 0; r < reps; ++r)
                        runKernel(k, static_cast<KernelId>(id),
                                  a.data() + 1, b.data() + 1, n);
                    const double ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    if (ms >= 2.0 || reps >= (1L << 24)) {
                        JsonRecord rec;
                        rec.bench = std::string("kernels/") +
                                    kKernelNames[id] + "/w" +
                                    std::to_string(n);
                        rec.model = satom::kern::tierName(tier);
                        rec.wallMs = ms;
                        rec.states = static_cast<long>(
                            runKernel(k, static_cast<KernelId>(id),
                                      a.data() + 1, b.data() + 1, n) *
                            static_cast<std::size_t>(reps));
                        rec.outcomes = reps;
                        rec.workers = 1;
                        out.add(rec);
                        break;
                    }
                    reps *= 4;
                }
            }
        }
    }
    if (!out.writeTo(path))
        std::cerr << "cannot write " << path << "\n";
    else
        std::cout << "wrote " << path << "\n";
}

} // namespace

BENCHMARK(BM_Kernel)
    ->ArgsProduct({{OrInto, AndInto, AnyAnd, Popcount, Premix, FindU64},
                   {64, 4096},
                   {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    const std::string jsonPath = extractJsonPath(argc, argv);
    std::cout << "kernel dispatch: best tier "
              << satom::kern::tierName(satom::kern::bestSupportedTier())
              << ", active "
              << satom::kern::tierName(satom::kern::activeTier())
              << "\n";
    if (!jsonPath.empty())
        emitJson(jsonPath);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
