/**
 * @file
 * Shared helpers for the experiment benches.
 *
 * Every bench binary prints its experiment's paper-style result rows
 * first (the reproduction artifact recorded in EXPERIMENTS.md) and
 * then runs google-benchmark timings for the code paths involved.
 */

#pragma once

#include <iostream>
#include <string>

#include "enumerate/engine.hpp"
#include "litmus/test.hpp"
#include "util/table.hpp"

namespace satom::bench
{

/** "allowed"/"forbidden" from an observability bool. */
inline std::string
verdict(bool observable)
{
    return observable ? "allowed" : "forbidden";
}

/** "yes"/"no" with expectation cross-check annotation. */
inline std::string
verdictChecked(bool observable, const LitmusTest &t, ModelId id)
{
    std::string v = verdict(observable);
    if (auto e = t.expectedFor(id)) {
        v += observable == *e ? "  (= paper)" : "  (MISMATCH)";
    }
    return v;
}

/** Run @p t under @p id and report observability of its condition. */
inline bool
observableUnder(const LitmusTest &t, ModelId id,
                EnumerationOptions opts = {})
{
    const auto r = enumerateBehaviors(t.program, makeModel(id), opts);
    return t.cond.observable(r.outcomes);
}

/** Print one experiment banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::cout << "\n=== " << id << ": " << what << " ===\n";
}

} // namespace satom::bench
