/**
 * @file
 * Experiment FIG8/9 — the address-aliasing speculation case study
 * (Section 5, Figures 8 and 9).
 *
 * Reproduces the paper's central finding: speculative address
 * disambiguation admits behaviors (L8 observing the overwritten
 * S(y,2)) that no non-speculative execution can produce, while every
 * non-speculative behavior survives.  Prints the behavior-set diff and
 * rollback counts, and times both enumerations.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "isa/builder.hpp"
#include "litmus/library.hpp"
#include "speculation/report.hpp"

namespace
{

using namespace satom;

void
BM_NonSpeculative(benchmark::State &state)
{
    const auto t = litmus::figure8();
    for (auto _ : state) {
        auto r = enumerateBehaviors(t.program, makeModel(ModelId::WMM));
        benchmark::DoNotOptimize(r);
    }
}

void
BM_Speculative(benchmark::State &state)
{
    const auto t = litmus::figure8();
    for (auto _ : state) {
        auto r = enumerateBehaviors(t.program,
                                    makeModel(ModelId::WMMSpec));
        benchmark::DoNotOptimize(r);
    }
}

void
BM_SpeculationWithRollbacks(benchmark::State &state)
{
    // Pointer that actually aliases: every enumeration performs real
    // rollbacks.
    ProgramBuilder pb;
    pb.init(litmus::locX, litmus::locY);
    pb.thread("P0")
        .load(1, litmus::locX)
        .store(regOp(1), immOp(7))
        .load(2, litmus::locY);
    pb.thread("P1").store(litmus::locY, 2);
    const Program p = pb.build();
    for (auto _ : state) {
        auto r = enumerateBehaviors(p, makeModel(ModelId::WMMSpec));
        benchmark::DoNotOptimize(r);
    }
}

} // namespace

BENCHMARK(BM_NonSpeculative);
BENCHMARK(BM_Speculative);
BENCHMARK(BM_SpeculationWithRollbacks);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    const auto t = litmus::figure8();
    banner("FIG8/9", t.description);

    const auto report = compareSpeculation(t.program);
    TextTable table;
    table.header({"model", "outcomes", "new behavior (r8=2)",
                  "rollbacks"});
    table.row({"WMM (non-spec)",
               std::to_string(report.nonSpeculative.size()),
               verdict(t.cond.observable(report.nonSpeculative)), "0"});
    table.row({"WMM+spec",
               std::to_string(report.speculative.size()),
               verdict(t.cond.observable(report.speculative)),
               std::to_string(report.rollbacks)});
    std::cout << table.render();
    std::cout << "behaviors added by speculation: "
              << report.added.size()
              << (report.nonSpecPreserved
                      ? "  (all non-speculative behaviors preserved)"
                      : "  (ERROR: non-speculative behavior lost)")
              << "\n";
    for (const auto &o : report.added)
        std::cout << "  + " << o.key() << '\n';
    std::cout << "paper: speculation must add the r6=z, r8=2 behavior "
                 "and lose nothing.\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
