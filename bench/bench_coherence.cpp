/**
 * @file
 * Experiment TAB-COHERENCE (our Table C) — Section 4.2: a cache
 * coherence protocol is a conservative approximation of Store
 * Atomicity.
 *
 * For every branch-free litmus test, runs the MSI bus simulator over
 * many schedules and checks containment: every coherent outcome lies
 * inside the SC outcome set (eager ordering loses behaviors, never
 * adds them), and the coverage ratio shows how much of SC a single
 * protocol run can reach.  Also reports protocol traffic statistics.
 */

#include <benchmark/benchmark.h>

#include <set>

#include "baseline/operational.hpp"
#include "bench_util.hpp"
#include "coherence/msi.hpp"
#include "litmus/library.hpp"

namespace
{

using namespace satom;

void
BM_MsiSimulation(benchmark::State &state)
{
    const auto tests = litmus::classicTests();
    const auto &t = tests[static_cast<std::size_t>(state.range(0))];
    std::uint32_t seed = 1;
    for (auto _ : state) {
        CoherenceConfig cfg;
        cfg.seed = seed++;
        auto run = simulateCoherent(t.program, cfg);
        benchmark::DoNotOptimize(run);
    }
    state.SetLabel(t.name);
}

} // namespace

BENCHMARK(BM_MsiSimulation)->DenseRange(0, 5);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    banner("TAB-COHERENCE (Table C)",
           "MSI outcomes are contained in the store-atomic sets");

    constexpr int kSeeds = 200;
    TextTable t;
    t.header({"test", "SC outcomes", "MSI distinct", "contained",
              "weak outcome seen", "busRd", "busRdX", "upgr", "inval",
              "wb"});
    bool allContained = true;
    for (const auto &lt : litmus::classicTests()) {
        const auto sc = enumerateOperationalSC(lt.program);
        std::set<std::string> scKeys;
        for (const auto &o : sc.outcomes)
            scKeys.insert(o.key());

        std::set<std::string> seen;
        CoherenceStats total;
        bool contained = true;
        bool weakSeen = false;
        for (int seed = 1; seed <= kSeeds; ++seed) {
            CoherenceConfig cfg;
            cfg.seed = static_cast<std::uint32_t>(seed);
            const auto run = simulateCoherent(lt.program, cfg);
            if (!run.completed)
                continue;
            seen.insert(run.outcome.key());
            if (!scKeys.count(run.outcome.key()))
                contained = false;
            if (lt.cond.matches(run.outcome))
                weakSeen = true;
            total.busReads += run.stats.busReads;
            total.busReadXs += run.stats.busReadXs;
            total.busUpgrades += run.stats.busUpgrades;
            total.invalidations += run.stats.invalidations;
            total.writebacks += run.stats.writebacks;
        }
        allContained &= contained;
        t.row({lt.name, std::to_string(sc.outcomes.size()),
               std::to_string(seen.size()),
               contained ? "yes" : "NO (BUG)",
               weakSeen ? "yes" : "no",
               std::to_string(total.busReads),
               std::to_string(total.busReadXs),
               std::to_string(total.busUpgrades),
               std::to_string(total.invalidations),
               std::to_string(total.writebacks)});
    }
    std::cout << t.render();
    std::cout << "paper (Section 4.2): coherence = eager ordering => "
                 "containment must hold everywhere: "
              << (allContained ? "CONFIRMED" : "VIOLATED") << "\n";
    std::cout << "relaxed outcomes are never observable on the "
                 "coherent in-order machine (\"weak outcome seen\" "
                 "must be no for tests SC forbids).\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
