/**
 * @file
 * Experiment FIG5 — Figure 5 of the paper (Store Atomicity rule c).
 *
 * "Unordered operations on y may order other operations": the two
 * unordered Store/Load pairs on y still force the mutual ancestor S1
 * before the mutual successor L7, so L9 = 1 is forbidden.  This is the
 * rule TSOtool famously omits (Section 7).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/atomicity.hpp"
#include "litmus/library.hpp"

namespace
{

using namespace satom;

void
BM_EnumerateFig5(benchmark::State &state)
{
    const auto t = litmus::figure5();
    const MemoryModel m =
        makeModel(static_cast<ModelId>(state.range(0)));
    for (auto _ : state) {
        auto r = enumerateBehaviors(t.program, m);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(m.name);
}

} // namespace

BENCHMARK(BM_EnumerateFig5)->DenseRange(0, 5);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    const auto t = litmus::figure5();
    banner("FIG5", t.description);

    EnumerationOptions opts;
    opts.collectExecutions = true;
    const auto r =
        enumerateBehaviors(t.program, makeModel(ModelId::WMM), opts);

    TextTable table;
    table.header({"observation", "verdict (WMM)"});
    table.row({"L3=2 && L5=4 && L7=6 && L9=1", verdictChecked(
        t.cond.observable(r.outcomes), t, ModelId::WMM)});
    table.row({"L3=2 && L5=4 && L7=6 && L9=8",
               verdict(Condition({Condition::reg(0, 3, 2),
                                  Condition::reg(0, 5, 4),
                                  Condition::reg(2, 7, 6),
                                  Condition::reg(2, 9, 8)})
                           .observable(r.outcomes))});
    std::cout << table.render();

    // How often does rule c actually leave the y operations unordered
    // while ordering x across threads?
    long ruleCWitness = 0;
    for (const auto &g : r.executions) {
        std::vector<NodeId> yLoads;
        for (const auto &n : g.nodes())
            if (n.isLoad() && n.addr == litmus::locY)
                yLoads.push_back(n.id);
        if (yLoads.size() == 2 &&
            !g.comparable(yLoads[0], yLoads[1]) &&
            g.node(yLoads[0]).source != g.node(yLoads[1]).source)
            ++ruleCWitness;
    }
    std::cout << "executions with genuinely unordered same-address "
              << "Load pairs (rule c at work): " << ruleCWitness
              << " of " << r.executions.size() << "\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
