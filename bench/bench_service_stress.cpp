/**
 * @file
 * Service-plane overload stress: closed-loop clients at a multiple of
 * worker capacity against an in-process Service.
 *
 * The driver runs `--load-factor` × `--workers` closed-loop clients
 * (each submits one interactive enumeration, waits for its response,
 * submits the next) for `--duration-ms`, which holds the offered load
 * at a fixed multiple of sustainable capacity — the regime the
 * admission-control design is for.  What the numbers must show
 * (DESIGN.md §14):
 *
 *  - admitted jobs stay within the class latency target (the depth
 *    bound caps queue wait, so `ok` p99 is bounded by
 *    depth × service time, not by offered load);
 *  - the excess is shed *immediately* (`shed` p99 is microseconds —
 *    rejection never waits in line);
 *  - nothing is silently lost: submitted = ok + shed + stale + other.
 *
 * --stats prints one JSON object with per-status counts and p50/p99
 * latency histograms; --json PATH appends a schema-3 bench record so
 * run_benchmarks.sh can collect it alongside the enumeration benches.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_out.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace
{

using namespace satom;
using Clock = std::chrono::steady_clock;

/** t threads; thread i stores its slot then reads `reads` others. */
std::string
ringLitmus(int threads, int reads)
{
    std::ostringstream os;
    os << "name ring\ninit";
    for (int i = 0; i < threads; ++i)
        os << " x" << i << "=0";
    os << "\n";
    for (int i = 0; i < threads; ++i) {
        os << "thread P" << i << "\n  st x" << i << ", " << (i + 1)
           << "\n";
        for (int r = 1; r <= reads; ++r)
            os << "  ld r" << r << ", x" << ((i + r) % threads)
               << "\n";
    }
    os << "exists P0:r1=0\n";
    return os.str();
}

/** Everything the client fleet measures, split by response status. */
struct Tally
{
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> stale{0};
    std::atomic<std::uint64_t> other{0};
    stats::LatencyHistogram okLatency;   ///< submit -> ok response
    stats::LatencyHistogram shedLatency; ///< submit -> shed response
};

std::string
statusOf(const std::string &line)
{
    const std::string key = "\"status\": \"";
    const std::size_t at = line.find(key);
    if (at == std::string::npos)
        return "?";
    const std::size_t from = at + key.size();
    return line.substr(from, line.find('"', from) - from);
}

/** One closed-loop client: submit, await the response, repeat. */
void
clientLoop(service::Service &svc, const std::string &request,
           Clock::time_point until, Tally &tally)
{
    while (Clock::now() < until) {
        std::mutex m;
        std::condition_variable cv;
        std::string response;
        bool got = false;
        const auto t0 = Clock::now();
        tally.submitted.fetch_add(1, std::memory_order_relaxed);
        svc.handleLine(request, CancelToken{},
                       [&](const std::string &line) {
                           {
                               std::lock_guard<std::mutex> lock(m);
                               response = line;
                               got = true;
                           }
                           cv.notify_one();
                           return true;
                       });
        {
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] { return got; });
        }
        const auto us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count());
        const std::string status = statusOf(response);
        if (status == "ok") {
            tally.ok.fetch_add(1, std::memory_order_relaxed);
            tally.okLatency.record(us);
        } else if (status == "shed") {
            tally.shed.fetch_add(1, std::memory_order_relaxed);
            tally.shedLatency.record(us);
        } else if (status == "stale") {
            tally.stale.fetch_add(1, std::memory_order_relaxed);
        } else {
            tally.other.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_service_stress [--workers N] [--load-factor N]\n"
        "         [--duration-ms N] [--threads N] [--reads N]\n"
        "         [--depth N] [--target-ms N] [--stats] [--json PATH]\n");
    return 64;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string jsonPath = bench::extractJsonPath(argc, argv);

    int workers = 2;
    int loadFactor = 4;
    long durationMs = 3000;
    int threads = 3;
    int reads = 2;
    long depth = 0;    // 0 = class default
    long targetMs = 0; // 0 = class default
    bool printStats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto val = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        long v = 0;
        if (arg == "--workers" && val() && cli::parseLong(argv[i], v))
            workers = static_cast<int>(v);
        else if (arg == "--load-factor" && val() &&
                 cli::parseLong(argv[i], v))
            loadFactor = static_cast<int>(v);
        else if (arg == "--duration-ms" && val() &&
                 cli::parseLong(argv[i], v))
            durationMs = v;
        else if (arg == "--threads" && val() &&
                 cli::parseLong(argv[i], v))
            threads = static_cast<int>(v);
        else if (arg == "--reads" && val() && cli::parseLong(argv[i], v))
            reads = static_cast<int>(v);
        else if (arg == "--depth" && val() && cli::parseLong(argv[i], v))
            depth = v;
        else if (arg == "--target-ms" && val() &&
                 cli::parseLong(argv[i], v))
            targetMs = v;
        else if (arg == "--stats")
            printStats = true;
        else
            return usage();
    }
    if (workers < 1 || loadFactor < 1 || durationMs < 1)
        return usage();

    service::ServiceConfig cfg;
    cfg.workers = workers;
    auto &interactive =
        cfg.classes[static_cast<std::size_t>(
            service::JobClass::Interactive)];
    if (depth > 0)
        interactive.maxDepth = static_cast<std::size_t>(depth);
    if (targetMs > 0)
        interactive.targetMs = targetMs;

    service::Service svc(cfg);
    svc.start();

    const std::string request =
        "{\"id\": \"stress\", \"op\": \"enumerate\", "
        "\"class\": \"interactive\", \"model\": \"WMM\", "
        "\"litmus\": \"" +
        service::jsonEscape(ringLitmus(threads, reads)) + "\"}";

    Tally tally;
    const int clients = workers * loadFactor;
    const auto until =
        Clock::now() + std::chrono::milliseconds(durationMs);
    std::vector<std::thread> fleet;
    fleet.reserve(static_cast<std::size_t>(clients));
    for (int i = 0; i < clients; ++i)
        fleet.emplace_back([&] {
            clientLoop(svc, request, until, tally);
        });
    for (auto &t : fleet)
        t.join();
    svc.stop();

    const auto &queueWait =
        svc.queueWait(service::JobClass::Interactive);
    std::ostringstream js;
    js << "{\"bench\": \"service-stress\", \"workers\": " << workers
       << ", \"clients\": " << clients
       << ", \"load_factor\": " << loadFactor
       << ", \"duration_ms\": " << durationMs
       << ", \"target_ms\": " << interactive.targetMs
       << ", \"depth\": " << interactive.maxDepth
       << ", \"submitted\": " << tally.submitted.load()
       << ", \"ok\": " << tally.ok.load()
       << ", \"shed\": " << tally.shed.load()
       << ", \"stale\": " << tally.stale.load()
       << ", \"other\": " << tally.other.load()
       << ", \"ok_latency\": " << tally.okLatency.json()
       << ", \"shed_latency\": " << tally.shedLatency.json()
       << ", \"queue_wait\": " << queueWait.json()
       << ", \"ok_p99_within_target\": "
       << (tally.okLatency.percentileUs(0.99) <=
                   static_cast<std::uint64_t>(interactive.targetMs) *
                       1000
               ? "true"
               : "false")
       << "}";
    const std::string report = js.str();

    if (printStats)
        std::printf("%s\n", report.c_str());
    else
        std::printf(
            "service-stress: %llu submitted, %llu ok (p99 %llu us), "
            "%llu shed (p99 %llu us), %llu stale, %llu other\n",
            static_cast<unsigned long long>(tally.submitted.load()),
            static_cast<unsigned long long>(tally.ok.load()),
            static_cast<unsigned long long>(
                tally.okLatency.percentileUs(0.99)),
            static_cast<unsigned long long>(tally.shed.load()),
            static_cast<unsigned long long>(
                tally.shedLatency.percentileUs(0.99)),
            static_cast<unsigned long long>(tally.stale.load()),
            static_cast<unsigned long long>(tally.other.load()));

    if (!jsonPath.empty()) {
        bench::JsonWriter out;
        bench::JsonRecord rec;
        rec.bench = "service-stress/ring" + std::to_string(threads) +
                    "x" + std::to_string(reads);
        rec.model = "WMM";
        rec.wallMs = static_cast<double>(durationMs);
        rec.states = static_cast<long>(tally.submitted.load());
        rec.outcomes = static_cast<long>(tally.ok.load());
        rec.workers = workers;
        rec.statsJson = report;
        out.add(rec);
        if (!out.writeTo(jsonPath)) {
            std::fprintf(stderr,
                         "bench_service_stress: cannot write %s\n",
                         jsonPath.c_str());
            return 2;
        }
    }

    // Accounting must close: every submission got exactly one answer.
    const std::uint64_t answered = tally.ok.load() + tally.shed.load() +
                                   tally.stale.load() +
                                   tally.other.load();
    if (answered != tally.submitted.load()) {
        std::fprintf(stderr,
                     "bench_service_stress: lost responses (%llu of "
                     "%llu)\n",
                     static_cast<unsigned long long>(answered),
                     static_cast<unsigned long long>(
                         tally.submitted.load()));
        return 2;
    }
    return 0;
}
