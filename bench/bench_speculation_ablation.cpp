/**
 * @file
 * Experiment TAB-SPEC (our Table D) — speculation ablation across the
 * litmus library.
 *
 * For every test, compares WMM with and without the Section 5.1
 * address-disambiguation dependencies: outcome growth, rollback
 * counts, and the safety invariant (non-speculative behaviors always
 * preserved).  Classic tests use immediate addresses, so speculation
 * should be a no-op there; the pointer-based tests at the bottom show
 * the real effect.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "isa/builder.hpp"
#include "litmus/library.hpp"
#include "speculation/report.hpp"

namespace
{

using namespace satom;

/** Pointer-chasing variants that exercise alias speculation. */
std::vector<LitmusTest>
pointerTests()
{
    std::vector<LitmusTest> out;
    out.push_back(litmus::figure8());

    {
        // Aliasing pointer: rollbacks fire, outcome sets coincide.
        ProgramBuilder pb;
        pb.init(litmus::locX, litmus::locY);
        pb.thread("P0")
            .load(1, litmus::locX)
            .store(regOp(1), immOp(7))
            .load(2, litmus::locY);
        pb.thread("P1").store(litmus::locY, 2);
        LitmusTest t;
        t.name = "ptr-alias";
        t.description = "pointer Store actually aliases the Load";
        t.program = pb.build();
        t.cond = Condition({Condition::reg(0, 2, 0)});
        out.push_back(std::move(t));
    }
    {
        // Non-aliasing pointer: speculation is pure win.
        ProgramBuilder pb;
        pb.init(litmus::locX, litmus::locW);
        pb.location(litmus::locW);
        pb.thread("P0")
            .load(1, litmus::locX)
            .store(regOp(1), immOp(7))
            .load(2, litmus::locY);
        pb.thread("P1").store(litmus::locY, 2);
        LitmusTest t;
        t.name = "ptr-noalias";
        t.description = "pointer Store provably distinct";
        t.program = pb.build();
        t.cond = Condition({Condition::reg(0, 2, 0)});
        out.push_back(std::move(t));
    }
    return out;
}

void
BM_SpeculationAblation(benchmark::State &state)
{
    const auto tests = pointerTests();
    const auto &t = tests[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        auto report = compareSpeculation(t.program);
        benchmark::DoNotOptimize(report);
    }
    state.SetLabel(t.name);
}

} // namespace

BENCHMARK(BM_SpeculationAblation)->DenseRange(0, 2);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    banner("TAB-SPEC (Table D)", "aliasing-speculation ablation");

    TextTable t;
    t.header({"test", "WMM outcomes", "WMM+spec outcomes", "added",
              "rollbacks", "non-spec preserved"});
    auto emit = [&](const LitmusTest &lt) {
        const auto report = compareSpeculation(lt.program);
        t.row({lt.name, std::to_string(report.nonSpeculative.size()),
               std::to_string(report.speculative.size()),
               std::to_string(report.added.size()),
               std::to_string(report.rollbacks),
               report.nonSpecPreserved ? "yes" : "NO (BUG)"});
    };
    for (const auto &lt : litmus::classicTests())
        emit(lt);
    for (const auto &lt : pointerTests())
        emit(lt);
    std::cout << t.render();
    std::cout << "paper: immediate-address tests are unaffected; "
                 "pointer tests show added behaviors (fig8) or pure "
                 "rollback overhead (ptr-alias), never lost "
                 "behaviors.\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
