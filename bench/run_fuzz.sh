#!/usr/bin/env bash
# Run the canonical differential-fuzz sweep (EXPERIMENTS.md) and check
# the determinism contract: the JSON report must be byte-identical no
# matter how many workers produced it.
#
# Usage: bench/run_fuzz.sh [build-dir] [seed-range]
#
# The build dir defaults to ./build and must already contain
# tools/satom_fuzz (cmake --build build -j); the seed range defaults
# to 1..200.  Exits non-zero on any oracle discrepancy or report
# divergence.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
seeds="${2:-1..200}"
bin="$build/tools/satom_fuzz"

if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $build -j)" >&2
    exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# The parallel leg asks for 4 workers; on a smaller host it is
# starved and its wall-clock is not a speedup measurement.  The
# report's own "cpus" field records the host so readers can tell.
cpus="$(nproc 2>/dev/null || echo 1)"
if [ "$cpus" -lt 4 ]; then
    echo "warning: only $cpus CPU(s) online for the --workers 4 leg;" \
         "wall-clock here measures scheduling overhead, not speedup" \
         "(the byte-identity check is unaffected; see \"cpus\" in" \
         "the report)" >&2
fi

"$bin" --seeds "$seeds" --json "$tmpdir/serial.json"
"$bin" --seeds "$seeds" --workers 4 --quiet \
    --json "$tmpdir/parallel.json"

if ! cmp -s "$tmpdir/serial.json" "$tmpdir/parallel.json"; then
    echo "error: report differs between worker counts" >&2
    diff "$tmpdir/serial.json" "$tmpdir/parallel.json" >&2 || true
    exit 1
fi

cp "$tmpdir/serial.json" "$repo/fuzz_report.json"
echo "wrote $repo/fuzz_report.json (worker-count independent)"
