/**
 * @file
 * Experiment TAB-LITMUS (our Table A) — the cross-model verdict
 * matrix for the whole litmus library, with the operational baselines
 * as referees for SC and TSO.
 *
 * Each cell answers "is the test's relaxed outcome observable under
 * this model?"; expectations from the library are cross-checked, and
 * two independent machines validate the graph framework's SC and TSO
 * columns.  Timings compare the graph enumerator against both
 * operational machines per test.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "baseline/operational.hpp"
#include "bench_util.hpp"
#include "cache/result_cache.hpp"
#include "json_out.hpp"
#include "litmus/library.hpp"
#include "util/stats.hpp"

namespace
{

using namespace satom;

const std::vector<LitmusTest> &
tests()
{
    static const std::vector<LitmusTest> all = litmus::allTests();
    return all;
}

void
BM_GraphEnumerator(benchmark::State &state)
{
    const auto &t = tests()[static_cast<std::size_t>(state.range(0))];
    const MemoryModel m =
        makeModel(static_cast<ModelId>(state.range(1)));
    for (auto _ : state) {
        auto r = enumerateBehaviors(t.program, m);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(t.name + "/" + m.name);
}

void
BM_OperationalSC(benchmark::State &state)
{
    const auto &t = tests()[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        auto r = enumerateOperationalSC(t.program);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(t.name);
}

void
BM_StoreBufferTSO(benchmark::State &state)
{
    const auto &t = tests()[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        auto r = enumerateOperationalTSO(t.program);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(t.name);
}

/**
 * One record per (model, worker count): enumerate the whole litmus
 * library and total wall time, states and outcomes.  workers == 1 is
 * a serial loop over the tests; higher counts fan the independent
 * tests out over enumerateBatch's work-stealing pool (litmus state
 * spaces are too small to split inside one test, so across-tests is
 * where the library run parallelizes).
 */
void
emitJson(const std::string &path)
{
    using namespace satom::bench;
    JsonWriter out;
    for (ModelId id : {ModelId::SC, ModelId::TSO, ModelId::WMM}) {
        const MemoryModel m = makeModel(id);
        std::vector<EnumerationJob> jobs;
        jobs.reserve(tests().size());
        for (const auto &lt : tests())
            jobs.push_back({&lt.program, &m});
        for (int workers : {1, 2, 4}) {
            EnumerationOptions opts;
            opts.numWorkers = workers;
            const auto t0 = std::chrono::steady_clock::now();
            const auto rs = enumerateBatch(jobs, opts);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            long states = 0;
            long outcomes = 0;
            stats::StatsRegistry merged;
            for (const auto &r : rs) {
                states += r.stats.statesExplored;
                outcomes += static_cast<long>(r.outcomes.size());
                merged.merge(r.registry);
            }
            out.add({"litmus_matrix", m.name, ms, states, outcomes,
                     workers, merged.json()});
        }
    }
    // Cold-vs-warm canonical result cache over the whole library
    // batch (serial, WMM): the warm pass answers every test from the
    // cache, which bounds the cache's best case on real litmus
    // workloads.
    {
        const MemoryModel m = makeModel(ModelId::WMM);
        std::vector<EnumerationJob> jobs;
        jobs.reserve(tests().size());
        for (const auto &lt : tests())
            jobs.push_back({&lt.program, &m});
        cache::ResultCache rc; // in-memory, no directory attached
        EnumerationOptions opts;
        opts.numWorkers = 1;
        opts.resultCache = &rc;
        for (const char *phase : {"cold", "warm"}) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto rs = enumerateBatch(jobs, opts);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            long states = 0;
            long outcomes = 0;
            stats::StatsRegistry merged;
            for (const auto &r : rs) {
                states += r.stats.statesExplored;
                outcomes += static_cast<long>(r.outcomes.size());
                merged.merge(r.registry);
            }
            out.add({"litmus_matrix", m.name, ms, states, outcomes,
                     1, merged.json(), phase});
        }
    }
    if (!out.writeTo(path))
        std::cerr << "cannot write " << path << "\n";
    else
        std::cout << "wrote " << path << "\n";
}

} // namespace

BENCHMARK(BM_GraphEnumerator)
    ->ArgsProduct({{0, 2, 6, 9, 21, 26}, {0, 2, 4}});
BENCHMARK(BM_OperationalSC)->DenseRange(0, 3);
BENCHMARK(BM_StoreBufferTSO)->DenseRange(0, 3);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    const std::string jsonPath = extractJsonPath(argc, argv);
    banner("TAB-LITMUS (Table A)",
           "allowed/forbidden matrix across models");

    TextTable t;
    t.header({"test", "SC", "TSO-approx", "TSO", "PSO", "WMM",
              "WMM+spec", "opSC", "opTSO", "check"});
    int mismatches = 0;
    for (const auto &lt : tests()) {
        std::vector<std::string> row{lt.name};
        bool ok = true;
        for (ModelId id : allModels()) {
            const bool obs = observableUnder(lt, id);
            row.push_back(obs ? "yes" : "no");
            if (auto e = lt.expectedFor(id); e && *e != obs)
                ok = false;
        }
        const auto opSc = enumerateOperationalSC(lt.program);
        const auto opTso = enumerateOperationalTSO(lt.program);
        const bool scObs = lt.cond.observable(opSc.outcomes);
        const bool tsoObs = lt.cond.observable(opTso.outcomes);
        row.push_back(scObs ? "yes" : "no");
        row.push_back(tsoObs ? "yes" : "no");
        if (auto e = lt.expectedFor(ModelId::SC); e && *e != scObs)
            ok = false;
        if (auto e = lt.expectedFor(ModelId::TSO); e && *e != tsoObs)
            ok = false;
        row.push_back(ok ? "ok" : "MISMATCH");
        if (!ok)
            ++mismatches;
        t.row(std::move(row));
    }
    std::cout << t.render();
    std::cout << "expectation mismatches: " << mismatches << "\n";

    if (!jsonPath.empty())
        emitJson(jsonPath);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
