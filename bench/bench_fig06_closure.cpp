/**
 * @file
 * Experiment FIG6 — the Store Atomicity closure itself (Figure 6).
 *
 * Microbenchmarks of rules a/b/c on synthetic graphs: k writer
 * threads, k reader threads, one shared location, all Loads resolved —
 * the closure has to derive the full coherence-order consequences.
 * Reports iterations-to-fixpoint and derived-edge counts.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/atomicity.hpp"

namespace
{

using namespace satom;

/** Build a resolved k-writers / k-readers graph over one location. */
ExecutionGraph
fanGraph(int k)
{
    ExecutionGraph g;
    std::vector<NodeId> stores;
    for (int i = 0; i < k; ++i) {
        Node s;
        s.tid = i;
        s.kind = NodeKind::Store;
        s.addrKnown = true;
        s.addr = 1;
        s.valueKnown = true;
        s.value = i + 1;
        s.executed = true;
        stores.push_back(g.addNode(s));
    }
    std::vector<NodeId> loads;
    for (int i = 0; i < k; ++i) {
        Node l;
        l.tid = k + i;
        l.kind = NodeKind::Load;
        l.addrKnown = true;
        l.addr = 1;
        const NodeId lid = g.addNode(l);
        Node &ln = g.node(lid);
        ln.source = stores[static_cast<std::size_t>(i)];
        ln.value = i + 1;
        ln.valueKnown = true;
        ln.executed = true;
        g.addEdge(ln.source, lid, EdgeKind::Source);
        loads.push_back(lid);
    }
    // A mutual ancestor of every Load and a mutual successor of every
    // Store, so rule c has real work to do.
    Node anchor;
    anchor.tid = 2 * k;
    anchor.kind = NodeKind::Store;
    anchor.addrKnown = true;
    anchor.addr = 2;
    anchor.valueKnown = true;
    anchor.executed = true;
    const NodeId a = g.addNode(anchor);
    Node collector;
    collector.tid = 2 * k + 1;
    collector.kind = NodeKind::Load;
    collector.addrKnown = true;
    collector.addr = 2;
    const NodeId b = g.addNode(collector);
    Node &bn = g.node(b);
    bn.source = a;
    bn.valueKnown = true;
    bn.executed = true;
    g.addEdge(a, b, EdgeKind::Source);
    for (NodeId l : loads)
        g.addEdge(a, l, EdgeKind::Local);
    for (NodeId s : stores)
        g.addEdge(s, b, EdgeKind::Local);
    return g;
}

void
BM_ClosureFixpoint(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        ExecutionGraph g = fanGraph(k);
        state.ResumeTiming();
        ClosureStats stats;
        const auto res = closeStoreAtomicity(g, &stats);
        benchmark::DoNotOptimize(res);
    }
    state.SetComplexityN(k);
}

void
BM_DeclarativeCheck(benchmark::State &state)
{
    ExecutionGraph g = fanGraph(static_cast<int>(state.range(0)));
    closeStoreAtomicity(g);
    for (auto _ : state) {
        benchmark::DoNotOptimize(satisfiesStoreAtomicity(g));
    }
}

void
BM_CandidateComputation(benchmark::State &state)
{
    ExecutionGraph g = fanGraph(static_cast<int>(state.range(0)));
    // One extra unresolved Load to query.
    Node l;
    l.tid = 99;
    l.kind = NodeKind::Load;
    l.addrKnown = true;
    l.addr = 1;
    const NodeId lid = g.addNode(l);
    closeStoreAtomicity(g);
    for (auto _ : state) {
        benchmark::DoNotOptimize(candidateStores(g, lid));
    }
}

} // namespace

BENCHMARK(BM_ClosureFixpoint)->RangeMultiplier(2)->Range(2, 16)
    ->Complexity();
BENCHMARK(BM_DeclarativeCheck)->RangeMultiplier(2)->Range(2, 16);
BENCHMARK(BM_CandidateComputation)->RangeMultiplier(2)->Range(2, 16);

int
main(int argc, char **argv)
{
    using namespace satom::bench;
    banner("FIG6", "rules a/b/c as a fixpoint closure");

    TextTable t;
    t.header({"writers/readers", "nodes", "iterations", "edges added",
              "consistent"});
    for (int k = 2; k <= 16; k *= 2) {
        ExecutionGraph g = fanGraph(k);
        ClosureStats stats;
        const auto res = closeStoreAtomicity(g, &stats);
        t.row({std::to_string(k), std::to_string(g.size()),
               std::to_string(stats.iterations),
               std::to_string(stats.edgesAdded),
               res == ClosureResult::Ok ? "yes" : "no"});
    }
    std::cout << t.render();

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
