/**
 * @file
 * Machine-readable benchmark records.
 *
 * The --json mode of the enumeration benches appends one record per
 * measured configuration and writes a flat JSON array, so downstream
 * tooling (and BENCH_enumerate.json, the checked-in artifact produced
 * by run_benchmarks.sh) can diff runs without scraping the text
 * tables.
 */

#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace satom::bench
{

/**
 * Record schema version.  2 added the per-record "stats" object (the
 * search's deterministic StatsRegistry counters, "null" when the
 * bench didn't capture any or the build compiled stats out); 3 added
 * "cache" ("off" | "cold" | "warm" — the result-cache state the
 * configuration was measured under) — readers keyed on the flat
 * field set should check this before scraping.
 */
constexpr int jsonSchema = 3;

/** One measured configuration. */
struct JsonRecord
{
    std::string bench;  ///< benchmark + workload identifier
    std::string model;  ///< memory model name
    double wallMs = 0;  ///< wall-clock time for the workload
    long states = 0;    ///< states explored (summed over the workload)
    long outcomes = 0;  ///< distinct outcomes (summed)
    int workers = 0;    ///< enumeration worker threads

    /**
     * Pre-rendered stats JSON (StatsRegistry::json()) for the
     * workload's search, or "" when not captured.  A string rather
     * than the registry itself so this header needs no stats dep.
     */
    std::string statsJson;

    /**
     * Result-cache state for the measurement: "off" (no cache
     * attached, the historical configurations), "cold" (cache
     * attached but empty) or "warm" (every enumeration served from
     * the cache).  Last so older aggregate initializers default it.
     */
    std::string cache = "off";
};

/** Collects records and renders them as a JSON array. */
class JsonWriter
{
  public:
    void add(JsonRecord r) { records_.push_back(std::move(r)); }

    std::string
    render() const
    {
        std::string out = "[\n";
        for (std::size_t i = 0; i < records_.size(); ++i) {
            const JsonRecord &r = records_[i];
            out += "  {\"schema\": " + std::to_string(jsonSchema) +
                   ", \"bench\": \"" + escape(r.bench) +
                   "\", \"model\": \"" + escape(r.model) +
                   "\", \"wall_ms\": " + formatMs(r.wallMs) +
                   ", \"states\": " + std::to_string(r.states) +
                   ", \"outcomes\": " + std::to_string(r.outcomes) +
                   ", \"workers\": " + std::to_string(r.workers) +
                   ", \"cache\": \"" + escape(r.cache) +
                   "\", \"cpus\": " + std::to_string(hostCpus()) +
                   ", \"starved\": " +
                   (r.workers > hostCpus() ? "true" : "false") +
                   ", \"stats\": " +
                   (r.statsJson.empty() ? "null" : r.statsJson) +
                   "}";
            out += i + 1 < records_.size() ? ",\n" : "\n";
        }
        out += "]\n";
        return out;
    }

    /** Write the array to @p path; false on I/O failure. */
    bool
    writeTo(const std::string &path) const
    {
        std::ofstream f(path);
        if (!f)
            return false;
        f << render();
        return static_cast<bool>(f);
    }

  private:
    /**
     * CPUs available to this process — the denominator any parallel
     * speedup in the record is bounded by.  Worker counts above this
     * cannot beat serial, so readers of the checked-in artifact need
     * it to interpret the wall_ms trajectory across machines.
     */
    static int
    hostCpus()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }

    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    static std::string
    formatMs(double ms)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", ms);
        return buf;
    }

    std::vector<JsonRecord> records_;
};

/** Pull `--json <path>` out of argv (mutating argc/argv); "" if absent. */
inline std::string
extractJsonPath(int &argc, char **argv)
{
    std::string path;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            path = argv[++i];
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return path;
}

} // namespace satom::bench
